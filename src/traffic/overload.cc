#include "traffic/overload.hh"

#include <algorithm>
#include <deque>
#include <queue>

#include "common/logging.hh"
#include "common/random.hh"

namespace ede {
namespace traffic {
namespace {

/** Seed of the jitter lane for one (stream, txn, attempt). */
std::uint64_t
jitterSeed(std::uint64_t seed, unsigned stream, std::uint32_t index,
           unsigned attempt)
{
    return seed ^
           ((static_cast<std::uint64_t>(stream) + 1) *
            0x9e3779b97f4a7c15ull) ^
           ((static_cast<std::uint64_t>(index) + 1) *
            0xbf58476d1ce4e5b9ull) ^
           (static_cast<std::uint64_t>(attempt) *
            0x94d049bb133111ebull);
}

/**
 * One queued admission attempt.  The heap pops strictly increasing
 * (arrival, seq, attempt) triples: seq is the job's emission
 * position, reproducing the old stable-sort's emission-order
 * tie-break, and every insert carries an arrival >= the popping
 * attempt's (retries back off forward, closed-pool releases happen
 * at completion), so pop order is monotone in arrival.
 */
struct Attempt
{
    Cycle arrival = 0;
    std::uint64_t seq = 0;
    unsigned attempt = 0;    ///< 0 = first try.
    Cycle origArrival = 0;   ///< Client-perceived start of the txn.
    std::size_t jobIdx = 0;
};

struct AttemptAfter
{
    bool
    operator()(const Attempt &a, const Attempt &b) const
    {
        if (a.arrival != b.arrival)
            return a.arrival > b.arrival;
        if (a.seq != b.seq)
            return a.seq > b.seq;
        return a.attempt > b.attempt;
    }
};

enum class ShedReason { None, Queue, Deadline, Token, Degrade };

} // namespace

std::vector<std::vector<OverloadJob>>
buildOverloadJobs(const TrafficPlan &plan,
                  const TrafficWorkload &workload,
                  const std::vector<std::vector<Cycle>> &completions)
{
    const unsigned coreCount =
        static_cast<unsigned>(workload.traces.size());
    ede_assert(completions.size() == coreCount,
               "traffic completions must cover every core");
    for (unsigned c = 0; c < coreCount; ++c) {
        ede_assert(completions[c].size() == workload.traces[c].size(),
                   "traffic completions must cover every trace index");
    }

    // Closed-loop service times: each transaction occupies its core
    // from the previous transaction's retirement to its own, so
    // S = F_i - F_{i-1} with the preamble's completion seeding the
    // recursion.  The subtraction telescopes: per-core sums equal
    // the core's total post-preamble cycles.
    std::vector<Cycle> coreLast(coreCount);
    for (unsigned c = 0; c < coreCount; ++c) {
        ede_assert(workload.preambleEnd[c] >= 1,
                   "traffic preamble must emit at least one inst");
        coreLast[c] = completions[c][workload.preambleEnd[c] - 1];
    }

    std::vector<std::vector<OverloadJob>> coreJobs(coreCount);
    for (const TxnRecord &rec : workload.txns) {
        ede_assert(rec.last > rec.first,
                   "traffic transactions emit at least one inst");
        // The stamp is the *execution* completion of the final
        // instruction, which an out-of-order core may deliver before
        // an older transaction's straggler; monotonize so service
        // times stay non-negative and still telescope.
        const Cycle finish =
            std::max(completions[rec.core][rec.last - 1],
                     coreLast[rec.core]);
        const Cycle service = finish - coreLast[rec.core];
        coreLast[rec.core] = finish;

        OverloadJob job;
        job.stream = rec.stream;
        job.core = rec.core;
        job.index = rec.index;
        job.kind = rec.kind;
        job.arrival = rec.arrival;
        job.think = rec.think;
        job.service = service;
        // Warmup/window classification by per-stream index: the
        // first floor(n * permille / 1000) transactions of each
        // stream are warmup, and window w covers per-stream progress
        // fraction [w/W, (w+1)/W).  Index-based, not arrival-based,
        // so the classification is identical for open and closed
        // arrivals and never depends on the offered load.
        const std::uint64_t n = trafficTxnsOfStream(plan, rec.stream);
        job.warmup = rec.index < n * plan.warmupPermille / 1000;
        job.window = static_cast<unsigned>(
            rec.index * static_cast<std::uint64_t>(
                            plan.latencyWindows) / n);
        coreJobs[rec.core].push_back(job);
    }
    return coreJobs;
}

ReplayOutput
replayOverload(const TrafficPlan &plan,
               const std::vector<std::vector<OverloadJob>> &coreJobs,
               const OverloadPolicy &policy,
               const BackpressureSignal &signal)
{
    const bool active = policy.active();
    const bool closed = plan.arrival.kind == ArrivalKind::ClosedPool;
    const unsigned poolSize = plan.arrival.poolSize;

    ReplayOutput out;
    out.streams.resize(plan.streams);
    out.totals.enabled = active;
    const std::uint64_t effDepth =
        active ? effectiveQueueDepth(policy, signal) : 0;
    out.totals.effectiveDepth = effDepth;

    std::size_t totalJobs = 0;
    for (const auto &jobs : coreJobs)
        totalJobs += jobs.size();
    out.txns.reserve(totalJobs);

    // The retry budget is per stream, and a stream lives on exactly
    // one core, so a flat vector shared across the core loop is safe.
    std::vector<std::uint64_t> retryBudget(plan.streams,
                                           policy.retryBudget);

    bool haveSteady = false;
    Cycle steadyMin = 0;
    Cycle arrMax = 0;

    for (const std::vector<OverloadJob> &jobs : coreJobs) {
        std::priority_queue<Attempt, std::vector<Attempt>,
                            AttemptAfter> pq;

        // Closed pool: per (stream, client) transaction lists in
        // index order; a client's next transaction is released when
        // its previous one leaves the system (completion or
        // permanent failure) plus the next think gap.
        std::vector<std::vector<std::vector<std::size_t>>> clientJobs;
        std::vector<std::vector<std::size_t>> clientPos;
        auto releaseNext = [&](unsigned stream, unsigned client,
                               Cycle when) {
            const std::vector<std::size_t> &list =
                clientJobs[stream][client];
            std::size_t &pos = clientPos[stream][client];
            if (pos >= list.size())
                return;
            const std::size_t j = list[pos++];
            const Cycle a = when + jobs[j].think;
            pq.push(Attempt{a, j, 0, a, j});
        };

        if (closed) {
            clientJobs.assign(
                plan.streams,
                std::vector<std::vector<std::size_t>>(poolSize));
            clientPos.assign(plan.streams,
                             std::vector<std::size_t>(poolSize, 0));
            for (std::size_t j = 0; j < jobs.size(); ++j) {
                clientJobs[jobs[j].stream][jobs[j].index % poolSize]
                    .push_back(j);
            }
            for (unsigned s = 0; s < plan.streams; ++s)
                for (unsigned c = 0; c < poolSize; ++c)
                    releaseNext(s, c, 0);
        } else {
            for (std::size_t j = 0; j < jobs.size(); ++j) {
                pq.push(Attempt{jobs[j].arrival, j, 0,
                                jobs[j].arrival, j});
            }
        }

        // Per-core server and policy state.
        Cycle serverDepart = 0;
        std::deque<Cycle> waiting;  ///< Starts of queued admissions.
        std::uint64_t tokens1024 =
            static_cast<std::uint64_t>(policy.tokenBurst) * 1024;
        Cycle tokenLast = 0;
        DegradeLevel level = DegradeLevel::Normal;
        std::deque<bool> window;
        std::uint64_t windowShed = 0;

        while (!pq.empty()) {
            const Attempt p = pq.top();
            pq.pop();
            const OverloadJob &job = jobs[p.jobIdx];
            const Cycle a = p.arrival;

            if (p.attempt == 0) {
                ++out.totals.offered;
                arrMax = std::max(arrMax, p.origArrival);
                if (!job.warmup) {
                    ++out.totals.steadyOffered;
                    if (!haveSteady || p.origArrival < steadyMin) {
                        haveSteady = true;
                        steadyMin = p.origArrival;
                    }
                }
            }

            // Admissions whose start has passed left the waiting
            // room (at most one is now in service).
            while (!waiting.empty() && waiting.front() <= a)
                waiting.pop_front();

            ShedReason shed = ShedReason::None;
            if (active) {
                if (policy.admission == AdmissionKind::TokenBucket) {
                    tokens1024 = std::min<std::uint64_t>(
                        static_cast<std::uint64_t>(policy.tokenBurst)
                            * 1024,
                        tokens1024 + (a - tokenLast) *
                                         policy.tokenRatePerKCycle);
                    tokenLast = a;
                }

                // The pressure verdict: would the admission policy
                // shed this attempt?  Evaluated even when the ladder
                // is already rejecting, because the sliding window
                // must see pressure *clear* for recovery to happen.
                ShedReason pressure = ShedReason::None;
                if (waiting.size() >= effDepth) {
                    pressure = ShedReason::Queue;
                } else if (policy.admission == AdmissionKind::Deadline) {
                    // Completion-predictive shedding: reject when
                    // the transaction, started as early as possible,
                    // would still finish past its deadline.  Shedding
                    // on the predicted *start* alone admits jobs that
                    // start just under the wire and complete past it
                    // -- under sustained overload those timeouts
                    // concentrate at the boundary and burn server
                    // capacity without producing goodput.
                    const Cycle predictedDone =
                        std::max(a, serverDepart) + job.service;
                    if (predictedDone >
                        p.origArrival + policy.deadline) {
                        pressure = ShedReason::Deadline;
                    }
                } else if (policy.admission ==
                           AdmissionKind::TokenBucket) {
                    if (tokens1024 < 1024)
                        pressure = ShedReason::Token;
                }

                if (policy.degrade) {
                    window.push_back(pressure != ShedReason::None);
                    if (window.back())
                        ++windowShed;
                    if (window.size() > policy.shedWindow) {
                        if (window.front())
                            --windowShed;
                        window.pop_front();
                    }
                    // Transitions get a fresh observation window so
                    // a saturated window can't ratchet straight to
                    // reject-all (and, symmetrically, so recovery
                    // re-earns each rung).
                    if (window.size() == policy.shedWindow) {
                        const std::uint64_t rate =
                            windowShed * 1000 / policy.shedWindow;
                        if (rate >= policy.degradePermille &&
                            level < DegradeLevel::RejectAll) {
                            level = static_cast<DegradeLevel>(
                                static_cast<unsigned>(level) + 1);
                            ++out.totals.degradeUp;
                            out.totals.maxDegradeLevel = std::max(
                                out.totals.maxDegradeLevel,
                                static_cast<unsigned>(level));
                            window.clear();
                            windowShed = 0;
                        } else if (rate <= policy.recoverPermille &&
                                   level > DegradeLevel::Normal) {
                            level = static_cast<DegradeLevel>(
                                static_cast<unsigned>(level) - 1);
                            ++out.totals.degradeDown;
                            window.clear();
                            windowShed = 0;
                        }
                    }
                }

                // Ladder rejections dominate the pressure verdict.
                if (level == DegradeLevel::RejectAll) {
                    shed = ShedReason::Degrade;
                } else if (level == DegradeLevel::ReadMostly &&
                           job.kind == TxnKind::Update) {
                    shed = ShedReason::Degrade;
                } else {
                    shed = pressure;
                }
            }

            if (shed == ShedReason::None) {
                // Admit: the server takes the job FCFS.
                ++out.totals.admitted;
                if (active &&
                    policy.admission == AdmissionKind::TokenBucket)
                    tokens1024 -= 1024;
                const Cycle start = std::max(a, serverDepart);
                if (start > a)
                    waiting.push_back(start);
                const Cycle depart = start + job.service;
                serverDepart = depart;

                ++out.totals.completed;
                const Cycle open = depart - p.origArrival;
                bool good = true;
                if (active && policy.deadline > 0 &&
                    open > policy.deadline) {
                    good = false;
                    ++out.totals.timeouts;
                } else {
                    ++out.totals.goodput;
                    if (!job.warmup)
                        ++out.totals.steadyGoodput;
                }
                out.txns.push_back(
                    ReplayedTxn{&job, true, good, open,
                                p.attempt + 1});
                if (closed) {
                    releaseNext(job.stream, job.index % poolSize,
                                depart);
                }
                continue;
            }

            // Shed.
            ++out.streams[job.stream].shed;
            switch (shed) {
              case ShedReason::Queue:
                ++out.totals.shedQueue;
                break;
              case ShedReason::Deadline:
                ++out.totals.shedDeadline;
                break;
              case ShedReason::Token:
                ++out.totals.shedToken;
                break;
              case ShedReason::Degrade:
                ++out.totals.shedDegrade;
                break;
              case ShedReason::None:
                break;
            }

            if (policy.retryBudget > 0 && retryBudget[job.stream] > 0) {
                --retryBudget[job.stream];
                ++out.totals.retries;
                ++out.streams[job.stream].retries;
                const Cycle backoff = std::min<Cycle>(
                    policy.retryBackoffCap,
                    policy.retryBackoffBase
                        << std::min<unsigned>(p.attempt, 20));
                Rng jrng(jitterSeed(plan.seed, job.stream, job.index,
                                    p.attempt + 1));
                const Cycle jitter = jrng.below(backoff / 2 + 1);
                pq.push(Attempt{a + backoff + jitter, p.seq,
                                p.attempt + 1, p.origArrival,
                                p.jobIdx});
            } else {
                ++out.totals.failures;
                ++out.streams[job.stream].failures;
                if (policy.retryBudget > 0)
                    ++out.totals.retryExhausted;
                out.txns.push_back(
                    ReplayedTxn{&job, false, false, 0,
                                p.attempt + 1});
                // A failed closed client gives up and thinks again.
                if (closed)
                    releaseNext(job.stream, job.index % poolSize, a);
            }
        }
    }

    ede_assert(out.totals.offered ==
                   out.totals.completed + out.totals.failures,
               "every offered transaction completes or fails");

    out.totals.steadyHorizon =
        haveSteady && arrMax > steadyMin ? arrMax - steadyMin : 0;

    std::vector<Cycle> openSamples;
    std::vector<Cycle> goodSamples;
    openSamples.reserve(out.txns.size());
    for (const ReplayedTxn &t : out.txns) {
        if (!t.completed)
            continue;
        openSamples.push_back(t.open);
        if (t.goodput)
            goodSamples.push_back(t.open);
    }
    out.totals.open = summarize(std::move(openSamples));
    out.totals.goodputOpen = summarize(std::move(goodSamples));
    return out;
}

TrafficResult
computeTrafficResult(
    const TrafficPlan &plan, const TrafficWorkload &workload,
    const std::vector<std::vector<Cycle>> &completions,
    const BackpressureSignal &signal)
{
    const unsigned coreCount =
        static_cast<unsigned>(workload.traces.size());
    const std::vector<std::vector<OverloadJob>> coreJobs =
        buildOverloadJobs(plan, workload, completions);

    // The headline records come from the policy-free replay: the
    // plain Lindley recursion, which completes every transaction.
    const OverloadPolicy nullPolicy;
    const ReplayOutput base =
        replayOverload(plan, coreJobs, nullPolicy, signal);

    const unsigned W = plan.latencyWindows;
    std::vector<Cycle> openAll, serviceAll;
    std::vector<Cycle> openWarm, openSteady;
    std::vector<Cycle> serviceWarm, serviceSteady;
    std::vector<std::vector<Cycle>> openByStream(plan.streams);
    std::vector<std::vector<Cycle>> serviceByStream(plan.streams);
    std::vector<std::vector<Cycle>> openByWin(W);
    std::vector<std::vector<Cycle>> serviceByWin(W);
    openAll.reserve(base.txns.size());
    serviceAll.reserve(base.txns.size());

    for (const ReplayedTxn &t : base.txns) {
        ede_assert(t.completed,
                   "the policy-free replay completes everything");
        const OverloadJob &job = *t.job;
        openAll.push_back(t.open);
        serviceAll.push_back(job.service);
        openByStream[job.stream].push_back(t.open);
        serviceByStream[job.stream].push_back(job.service);
        if (job.warmup) {
            openWarm.push_back(t.open);
            serviceWarm.push_back(job.service);
        } else {
            openSteady.push_back(t.open);
            serviceSteady.push_back(job.service);
        }
        openByWin[job.window].push_back(t.open);
        serviceByWin[job.window].push_back(job.service);
    }

    TrafficResult result;
    result.enabled = true;
    result.open = summarize(std::move(openAll));
    result.service = summarize(std::move(serviceAll));
    result.openWarmup = summarize(std::move(openWarm));
    result.openSteady = summarize(std::move(openSteady));
    result.serviceWarmup = summarize(std::move(serviceWarm));
    result.serviceSteady = summarize(std::move(serviceSteady));

    result.windows.reserve(W);
    for (unsigned w = 0; w < W; ++w) {
        WindowLatency wl;
        wl.window = w;
        // Flagged warmup when the whole window lies inside the
        // warmup fraction of the run.
        wl.warmup = (w + 1) * 1000 <=
                    static_cast<std::uint64_t>(plan.warmupPermille) * W;
        wl.open = summarize(std::move(openByWin[w]));
        wl.service = summarize(std::move(serviceByWin[w]));
        result.windows.push_back(wl);
    }

    result.streams.reserve(plan.streams);
    for (unsigned s = 0; s < plan.streams; ++s) {
        StreamLatency sl;
        sl.stream = s;
        sl.core = s % coreCount;
        sl.open = summarize(std::move(openByStream[s]));
        sl.service = summarize(std::move(serviceByStream[s]));
        result.streams.push_back(sl);
    }

    if (plan.policy.active()) {
        const ReplayOutput ov =
            replayOverload(plan, coreJobs, plan.policy, signal);
        result.overload = ov.totals;
        for (unsigned s = 0; s < plan.streams; ++s) {
            result.streams[s].shed = ov.streams[s].shed;
            result.streams[s].retries = ov.streams[s].retries;
            result.streams[s].failures = ov.streams[s].failures;
        }
    }
    return result;
}

} // namespace traffic
} // namespace ede
