/**
 * @file
 * Deterministic overload-control replay over measured service times.
 *
 * This is the serving-path half of the traffic harness: the machine
 * run stays closed-loop and arrival-independent (stream_mux.hh), and
 * this module replays the measured per-transaction service times
 * through a single-server FCFS queue per core -- now with the
 * control surface of a production serving stack in front of it
 * (policy.hh): a backpressure-scaled finite queue, pluggable
 * admission, budgeted retries, and a graceful-degradation ladder.
 *
 * One engine, two uses:
 *
 *  - with the policy inactive it *is* the PR-9 Lindley replay (every
 *    job admitted, served in arrival order with emission-order
 *    ties), and computeTrafficResult builds the headline latency
 *    records from it;
 *  - with a policy active it additionally replays the admission /
 *    retry / degradation story and reports goodput, shed, retry,
 *    timeout and ladder counters (OverloadResult).
 *
 * Determinism argument: every quantity is an integer cycle count or
 * counter; jobs are processed in strictly increasing (arrival, seq,
 * attempt) order from a priority queue whose inserts never precede
 * the last pop (retries back off forward in time, closed-pool
 * releases happen at completion), so the replay order is a pure
 * function of (plan, measured service times, signal).  The policies
 * consume service times, they never perturb the trace -- the machine
 * run remains bit-identical across offered loads, --jobs counts and
 * both tickers, and so do these records.
 */

#ifndef EDE_TRAFFIC_OVERLOAD_HH
#define EDE_TRAFFIC_OVERLOAD_HH

#include <vector>

#include "traffic/policy.hh"
#include "traffic/stream_mux.hh"

namespace ede {
namespace traffic {

/**
 * One transaction as the replay engine sees it: schedule identity,
 * measured service time, and its precomputed warmup/window
 * classification (by per-stream index, so the classification is
 * arrival-independent and identical for open and closed arrivals).
 */
struct OverloadJob
{
    unsigned stream = 0;
    unsigned core = 0;
    std::uint32_t index = 0;  ///< Per-stream transaction index.
    TxnKind kind = TxnKind::Read;
    Cycle arrival = 0;   ///< Open-loop stamp (unused for ClosedPool).
    Cycle think = 0;     ///< ClosedPool think gap preceding this txn.
    Cycle service = 0;   ///< Measured closed-loop service time.
    bool warmup = false;
    unsigned window = 0;
};

/** One transaction's replay outcome. */
struct ReplayedTxn
{
    const OverloadJob *job = nullptr;
    bool completed = false;
    bool goodput = false;   ///< Completed within the deadline.
    Cycle open = 0;         ///< depart - original arrival (completed).
    unsigned attempts = 0;  ///< Admission attempts consumed.
};

/** Per-stream overload counters. */
struct StreamOverload
{
    std::uint64_t shed = 0;
    std::uint64_t retries = 0;
    std::uint64_t failures = 0;
};

/** Everything one replay pass produces. */
struct ReplayOutput
{
    OverloadResult totals;
    std::vector<ReplayedTxn> txns;      ///< Cores in order, pop order.
    std::vector<StreamOverload> streams;  ///< Stream-id order.
};

/**
 * Measure every transaction's service time from the completion
 * stamps and classify it into warmup/window bins.  Jobs are grouped
 * per core in emission (schedule) order.
 */
std::vector<std::vector<OverloadJob>> buildOverloadJobs(
    const TrafficPlan &plan, const TrafficWorkload &workload,
    const std::vector<std::vector<Cycle>> &completions);

/**
 * Replay @p coreJobs through the per-core FCFS servers under
 * @p policy (an inactive policy admits everything -- the plain
 * Lindley replay).  @p signal scales the finite queue depth; it is
 * ignored when the policy is inactive.
 */
ReplayOutput replayOverload(
    const TrafficPlan &plan,
    const std::vector<std::vector<OverloadJob>> &coreJobs,
    const OverloadPolicy &policy, const BackpressureSignal &signal);

/**
 * The full post-run traffic computation Session::run invokes: the
 * base (policy-free) replay yields the headline open/service
 * records, their warmup/steady split, the per-window series and the
 * per-stream records; when plan.policy is active a second replay
 * under the policy fills result.overload and the per-stream
 * shed/retry/failure counters.  @p completions holds each core's
 * per-trace-index completion cycles (System::completionCycles).
 */
TrafficResult computeTrafficResult(
    const TrafficPlan &plan, const TrafficWorkload &workload,
    const std::vector<std::vector<Cycle>> &completions,
    const BackpressureSignal &signal);

} // namespace traffic
} // namespace ede

#endif // EDE_TRAFFIC_OVERLOAD_HH
