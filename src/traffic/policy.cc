#include "traffic/policy.hh"

#include <algorithm>

namespace ede {
namespace traffic {

std::uint64_t
effectiveQueueDepth(const OverloadPolicy &policy,
                    const BackpressureSignal &signal)
{
    const std::uint64_t pressure =
        std::min<std::uint64_t>(1000, signal.occupancyPermille +
                                          signal.rejectPermille);
    const std::uint64_t depth =
        policy.queueDepth * (1200 - pressure) / 1200;
    return std::max<std::uint64_t>(1, depth);
}

} // namespace traffic
} // namespace ede
