/**
 * @file
 * Overload-control policy knobs for the serving path.
 *
 * The paper's NVM controller has a *finite* write-pending queue
 * behind the ADR domain, but the PR-9 traffic harness replays
 * arrivals into an infinite Lindley queue: past the overload knee
 * the open-loop tail diverges and nothing pushes back.  This header
 * declares the control surface a production serving stack puts in
 * front of such a queue:
 *
 *  - a finite per-core service queue whose depth is *derived from
 *    the machine's own backpressure signal* -- the measured NVM
 *    write-pending occupancy and accept-reject counts of the run --
 *    so a fence-heavy configuration that keeps the WPQ full admits
 *    less than one that drains it;
 *  - pluggable admission policies: drop-tail on the finite queue,
 *    deadline-based load shedding (reject a transaction whose
 *    *predicted completion* already misses its deadline -- the
 *    cheapest moment to say no, and admitted work is then
 *    guaranteed to be goodput), and a token-bucket rate limiter;
 *  - client-side retries under a per-stream retry *budget* with
 *    seeded exponential backoff + jitter;
 *  - a graceful-degradation escalation ladder (Normal -> ReadMostly
 *    -> RejectAll) driven by a sliding-window shed rate, recovering
 *    hysteretically.
 *
 * Everything here is plain data + integer arithmetic: the policies
 * run in the post-hoc replay (traffic/overload.hh) over *measured*
 * service times and never perturb the trace, so the closed-loop
 * machine run stays bit-identical across offered loads, --jobs
 * counts and ticking modes.
 */

#ifndef EDE_TRAFFIC_POLICY_HH
#define EDE_TRAFFIC_POLICY_HH

#include <cstdint>
#include <string_view>

#include "common/types.hh"

namespace ede {
namespace traffic {

/** The pluggable admission policies. */
enum class AdmissionKind
{
    None,        ///< Infinite queue; the PR-9 behaviour.
    DropTail,    ///< Shed when the finite queue is full.
    Deadline,    ///< Shed on a predicted deadline miss at completion.
    TokenBucket, ///< Shed when the bucket is out of tokens.
};

/** Printable policy name (JSON / labels / CLI). */
constexpr std::string_view
admissionKindName(AdmissionKind k)
{
    switch (k) {
      case AdmissionKind::None: return "none";
      case AdmissionKind::DropTail: return "drop-tail";
      case AdmissionKind::Deadline: return "deadline";
      case AdmissionKind::TokenBucket: return "token-bucket";
    }
    return "<bad-admission-kind>";
}

/** The graceful-degradation ladder's rungs, mildest first. */
enum class DegradeLevel : std::uint8_t
{
    Normal = 0,     ///< Serve everything the admission policy admits.
    ReadMostly = 1, ///< Shed update transactions; serve reads.
    RejectAll = 2,  ///< Shed everything until pressure subsides.
};

constexpr std::string_view
degradeLevelName(DegradeLevel l)
{
    switch (l) {
      case DegradeLevel::Normal: return "normal";
      case DegradeLevel::ReadMostly: return "read-mostly";
      case DegradeLevel::RejectAll: return "reject-all";
    }
    return "<bad-degrade-level>";
}

/** One traffic plan's overload-control configuration. */
struct OverloadPolicy
{
    AdmissionKind admission = AdmissionKind::None;

    /**
     * Base finite service-queue depth, in waiting transactions.  The
     * *effective* depth is this scaled down by the run's measured
     * backpressure signal (effectiveQueueDepth below); it bounds the
     * queue under every admission policy, not just drop-tail.
     */
    unsigned queueDepth = 16;

    /**
     * Client deadline in cycles from the original arrival
     * (Deadline admission; also classifies completed-but-late
     * transactions as timeouts for goodput accounting).  Must be
     * >= 1 when admission == Deadline.
     */
    Cycle deadline = 0;

    /** @name Token bucket (admission == TokenBucket only). */
    /// @{
    unsigned tokenRatePerKCycle = 0; ///< Tokens added per 1024 cycles.
    unsigned tokenBurst = 0;         ///< Bucket capacity, in tokens.
    /// @}

    /**
     * @name Client-side retry budget.
     *
     * A shed transaction re-enters the arrival stream as a new
     * Lindley job after a seeded exponential backoff + jitter, as
     * long as its stream still has budget; budget exhaustion is a
     * counted permanent failure.  Budget is per stream for the whole
     * run -- the classic retry-budget discipline that stops retry
     * storms from amplifying an overload.
     */
    /// @{
    unsigned retryBudget = 0;       ///< Retries per stream (0 = none).
    Cycle retryBackoffBase = 256;   ///< First backoff, cycles.
    Cycle retryBackoffCap = 8192;   ///< Exponential backoff ceiling.
    /// @}

    /**
     * @name Graceful-degradation escalation ladder.
     *
     * A sliding window over the last shedWindow admission-pressure
     * verdicts (would the admission policy shed this transaction?)
     * drives the ladder: when the windowed shed rate reaches
     * degradePermille the core escalates one rung; when it falls to
     * recoverPermille it steps back down.  recoverPermille <
     * degradePermille is the hysteresis band that stops the ladder
     * from oscillating at the threshold.
     */
    /// @{
    bool degrade = false;
    unsigned shedWindow = 32;
    unsigned degradePermille = 500;
    unsigned recoverPermille = 125;
    /// @}

    /** True when any admission policy gates the replay. */
    bool active() const { return admission != AdmissionKind::None; }
};

/**
 * The backpressure signal one machine run emits, derived from the
 * measured RunResult: how full the NVM write-pending queue ran and
 * how often the controller had to reject an accept.  All integer
 * permille so the derived queue depth is bit-stable.
 */
struct BackpressureSignal
{
    /** Mean WPQ occupancy in permille of bufferSlots. */
    std::uint64_t occupancyPermille = 0;

    /** Accept rejects (full + transient) in permille of attempts. */
    std::uint64_t rejectPermille = 0;

    /** Raw counts, for the record. */
    std::uint64_t transientRejects = 0;
    std::uint64_t bufferFullRejects = 0;
};

/**
 * The finite queue depth the replay actually enforces: the base
 * depth scaled down linearly by the combined pressure (occupancy +
 * reject permille, saturated at 1000), bottoming out at 1/6 of the
 * base and never below one slot:
 *
 *     depth = max(1, queueDepth * (1200 - pressure) / 1200)
 *
 * A configuration that keeps the WPQ pinned (U under write-heavy
 * load) therefore admits a visibly shorter queue than one that
 * drains it -- the NVM's own congestion, surfaced at admission.
 */
std::uint64_t effectiveQueueDepth(const OverloadPolicy &policy,
                                  const BackpressureSignal &signal);

} // namespace traffic
} // namespace ede

#endif // EDE_TRAFFIC_POLICY_HH
