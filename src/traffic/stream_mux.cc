#include "traffic/stream_mux.hh"

#include <algorithm>

#include "common/logging.hh"
#include "trace/builder.hh"

namespace ede {
namespace traffic {
namespace {

/** Decorrelate a stream's Rng lane from the master seed. */
std::uint64_t
streamSeed(std::uint64_t seed, unsigned stream, std::uint64_t lane)
{
    // Distinct odd multipliers per lane keep the key/kind draws and
    // the arrival draws on unrelated xoshiro streams, so changing
    // the arrival spec can never perturb the generated trace.
    return seed ^ ((stream + 1) * 0x9e3779b97f4a7c15ull) ^
           (lane * 0xbf58476d1ce4e5b9ull);
}

/** Per-core generation state (mirrors apps/concurrent.cc). */
struct CoreGen
{
    explicit CoreGen(Trace &t) : b(t) {}

    TraceBuilder b;
    TempRegPool temps;
};

/** Per-stream generation state. */
struct StreamGen
{
    StreamGen(const TrafficPlan &plan, unsigned stream)
        : rng(streamSeed(plan.seed, stream, 1)),
          zipf(plan.mix.keys, plan.mix.zipfTheta),
          arrivals(plan.arrival, streamSeed(plan.seed, stream, 2))
    {
    }

    Rng rng;
    ZipfGenerator zipf;
    ArrivalProcess arrivals;
    std::uint64_t nextValue = 1;
};

/** The persist->publish ordering token (Table III lowering). */
void
emitOrderingToken(TraceBuilder &b, Config cfg)
{
    switch (cfg) {
      case Config::B:
        b.dsbSy();
        break;
      case Config::SU:
        b.dmbSt();
        break;
      case Config::IQ:
      case Config::WB:
      case Config::U:
        break;
    }
}

/** The commit-durable drain that ends every update transaction. */
void
emitCommitDrain(TraceBuilder &b, Config cfg, Edk key)
{
    switch (cfg) {
      case Config::B:
        b.dsbSy();
        break;
      case Config::SU:
        b.dmbSt();
        break;
      case Config::IQ:
      case Config::WB:
        b.waitKey(key);
        break;
      case Config::U:
        break;
    }
}

/** Zipf-keyed dependent load chain over the stream's shard. */
void
emitReadTxn(CoreGen &g, StreamGen &s, unsigned stream, int ops)
{
    RegIndex r_prev = g.temps.get();
    for (int op = 0; op < ops; ++op) {
        const std::uint64_t rank = s.zipf.next(s.rng);
        const RegIndex r_next = g.temps.get();
        // Dependent chain: base is the previous hop's destination,
        // so the transaction's memory time is serial, as a real
        // pointer-structured lookup's would be.
        g.b.ldr(r_next, r_prev, trafficKeyAddr(stream, rank));
        r_prev = r_next;
    }
}

/**
 * Write-ahead update: persist every dirtied key line with DC CVAP,
 * order the publishing store behind the persists (ordering token /
 * EDE key operands), then drain to make the commit durable.
 */
void
emitUpdateTxn(CoreGen &g, StreamGen &s, Config cfg, unsigned stream,
              unsigned core, int ops)
{
    const bool ede = configUsesEde(cfg);
    const Edk k = trafficCoreKey(core);

    std::uint64_t committed = 0;
    for (int op = 0; op < ops; ++op) {
        const std::uint64_t rank = s.zipf.next(s.rng);
        const Addr addr = trafficKeyAddr(stream, rank);
        const std::uint64_t val = s.nextValue++;
        const RegIndex r_v = g.temps.get();
        const RegIndex r_b = g.temps.get();
        g.b.movImm(r_v, static_cast<std::int64_t>(val));
        g.b.str(r_v, r_b, addr, val);
        g.b.cvap(r_b, addr, ede ? EdkOps{k, kZeroEdk} : EdkOps{});
        committed = val;
    }
    emitOrderingToken(g.b, cfg);

    // Publish the commit record behind the key persists.
    const RegIndex r_c = g.temps.get();
    const RegIndex r_p = g.temps.get();
    g.b.movImm(r_c, static_cast<std::int64_t>(committed));
    g.b.str(r_c, r_p, trafficPublishAddr(stream), committed, 0,
            ede ? EdkOps{kZeroEdk, k} : EdkOps{});
    g.b.cvap(r_p, trafficPublishAddr(stream),
             ede ? EdkOps{k, kZeroEdk} : EdkOps{});
    emitCommitDrain(g.b, cfg, k);
}

/** Warm each resident stream's shard and close the setup phase. */
void
emitPreamble(CoreGen &g, const TrafficPlan &plan, unsigned core,
             unsigned coreCount)
{
    for (unsigned s = core; s < plan.streams; s += coreCount) {
        const RegIndex r_v = g.temps.get();
        const RegIndex r_b = g.temps.get();
        g.b.str(r_v, r_b, trafficPublishAddr(s), 0);
    }
    g.b.dsbSy();
}

} // namespace

TrafficCheck
validateTrafficPlan(const TrafficPlan &plan, Config cfg,
                    unsigned coreCount)
{
    const auto invalid = [](const char *msg) {
        return TrafficCheck{SimErrorKind::RunRequestInvalid, msg};
    };
    if (coreCount < 1)
        return invalid("traffic plan needs >= 1 core");
    if (plan.streams < 1)
        return invalid("traffic plan needs >= 1 stream");
    if (plan.txnsPerStream < 1)
        return invalid("traffic plan needs >= 1 txn per stream");
    if (plan.opsPerTxn < 1)
        return invalid("traffic plan needs >= 1 op per txn");
    if (plan.mix.keys < 1 || plan.mix.keys > kTrafficMaxKeys)
        return invalid("traffic keyspace must be in [1, 4096]");
    if (!(plan.mix.readFraction >= 0.0 &&
          plan.mix.readFraction <= 1.0))
        return invalid("traffic read fraction must be in [0, 1]");
    if (!(plan.mix.zipfTheta >= 0.0 && plan.mix.zipfTheta < 1.0))
        return invalid("traffic zipf theta must be in [0, 1)");
    if (!(plan.arrival.meanGap > 0.0))
        return invalid("traffic mean arrival gap must be > 0");
    if (!(plan.arrival.burstFactor >= 1.0))
        return invalid("traffic burst factor must be >= 1");
    if (!(plan.arrival.pSwitch >= 0.0 && plan.arrival.pSwitch <= 1.0))
        return invalid("traffic burst switch prob must be in [0, 1]");
    if (configUsesEde(cfg) && coreCount > kMaxTrafficEdeCores) {
        return TrafficCheck{
            SimErrorKind::CoreCountKeyExhausted,
            "EDE traffic dedicates one real key per core"};
    }
    return {};
}

TrafficWorkload
buildTrafficWorkload(const TrafficPlan &plan, Config cfg,
                     unsigned coreCount)
{
    ede_assert(validateTrafficPlan(plan, cfg, coreCount).ok(),
               "buildTrafficWorkload requires a validated plan");

    TrafficWorkload wl;
    wl.traces.resize(coreCount);
    std::vector<CoreGen> gens;
    gens.reserve(coreCount);
    for (Trace &t : wl.traces)
        gens.emplace_back(t);

    std::vector<StreamGen> streams;
    streams.reserve(plan.streams);
    for (unsigned s = 0; s < plan.streams; ++s)
        streams.emplace_back(plan, s);

    wl.preambleEnd.resize(coreCount);
    for (unsigned c = 0; c < coreCount; ++c) {
        emitPreamble(gens[c], plan, c, coreCount);
        wl.preambleEnd[c] = wl.traces[c].size();
    }

    // Round-robin schedule: every round issues one transaction per
    // stream, streams in id order.  A core therefore serves its
    // resident streams in a fixed rotation that depends only on
    // (plan shape, coreCount) -- never on arrivals -- which is what
    // keeps the trace (and the machine's closed-loop cycles)
    // bit-identical across offered loads.
    wl.txns.reserve(static_cast<std::size_t>(plan.streams) *
                    static_cast<std::size_t>(plan.txnsPerStream));
    for (int t = 0; t < plan.txnsPerStream; ++t) {
        for (unsigned s = 0; s < plan.streams; ++s) {
            const unsigned core = s % coreCount;
            StreamGen &sg = streams[s];

            TxnRecord rec;
            rec.stream = s;
            rec.core = core;
            rec.index = static_cast<std::uint32_t>(t);
            rec.kind = drawTxnKind(plan.mix, sg.rng);
            rec.arrival = sg.arrivals.next();
            rec.first = wl.traces[core].size();
            if (rec.kind == TxnKind::Read)
                emitReadTxn(gens[core], sg, s, plan.opsPerTxn);
            else
                emitUpdateTxn(gens[core], sg, cfg, s, core,
                              plan.opsPerTxn);
            rec.last = wl.traces[core].size();
            wl.txns.push_back(rec);
        }
    }
    return wl;
}

TrafficResult
computeTrafficResult(
    const TrafficPlan &plan, const TrafficWorkload &workload,
    const std::vector<std::vector<Cycle>> &completions)
{
    const unsigned coreCount =
        static_cast<unsigned>(workload.traces.size());
    ede_assert(completions.size() == coreCount,
               "traffic completions must cover every core");
    for (unsigned c = 0; c < coreCount; ++c) {
        ede_assert(completions[c].size() == workload.traces[c].size(),
                   "traffic completions must cover every trace index");
    }

    // Closed-loop service times: each transaction occupies its core
    // from the previous transaction's retirement to its own, so
    // S = F_i - F_{i-1} with the preamble's completion seeding the
    // recursion.  The subtraction telescopes: per-core sums equal
    // the core's total post-preamble cycles.
    std::vector<Cycle> coreLast(coreCount);
    for (unsigned c = 0; c < coreCount; ++c) {
        ede_assert(workload.preambleEnd[c] >= 1,
                   "traffic preamble must emit at least one inst");
        coreLast[c] = completions[c][workload.preambleEnd[c] - 1];
    }

    // First pass, in emission order: measure every transaction's
    // service time from the completion stamps.
    struct Job
    {
        const TxnRecord *rec;
        Cycle service;
    };
    std::vector<std::vector<Job>> coreJobs(coreCount);
    for (const TxnRecord &rec : workload.txns) {
        ede_assert(rec.last > rec.first,
                   "traffic transactions emit at least one inst");
        // The stamp is the *execution* completion of the final
        // instruction, which an out-of-order core may deliver before
        // an older transaction's straggler; monotonize so service
        // times stay non-negative and still telescope.
        const Cycle finish =
            std::max(completions[rec.core][rec.last - 1],
                     coreLast[rec.core]);
        const Cycle service = finish - coreLast[rec.core];
        coreLast[rec.core] = finish;
        coreJobs[rec.core].push_back(Job{&rec, service});
    }

    // Open-loop replay (Lindley recursion) per core: the server
    // takes jobs in ARRIVAL order -- not the round-robin emission
    // order, whose interleaving of independently-drifting stream
    // clocks would charge an early arrival for a late neighbour --
    // and each job holds the server for its measured service time.
    // The stable sort keeps ties in emission order, so the replay
    // stays deterministic.
    std::vector<std::vector<Cycle>> openByStream(plan.streams);
    std::vector<std::vector<Cycle>> serviceByStream(plan.streams);
    std::vector<Cycle> openAll;
    std::vector<Cycle> serviceAll;
    openAll.reserve(workload.txns.size());
    serviceAll.reserve(workload.txns.size());

    for (unsigned c = 0; c < coreCount; ++c) {
        std::stable_sort(coreJobs[c].begin(), coreJobs[c].end(),
                         [](const Job &a, const Job &b) {
                             return a.rec->arrival < b.rec->arrival;
                         });
        Cycle depart = 0;
        for (const Job &job : coreJobs[c]) {
            const Cycle start = std::max(job.rec->arrival, depart);
            depart = start + job.service;
            const Cycle open = depart - job.rec->arrival;

            openByStream[job.rec->stream].push_back(open);
            serviceByStream[job.rec->stream].push_back(job.service);
            openAll.push_back(open);
            serviceAll.push_back(job.service);
        }
    }

    TrafficResult result;
    result.enabled = true;
    result.open = summarize(std::move(openAll));
    result.service = summarize(std::move(serviceAll));
    result.streams.reserve(plan.streams);
    for (unsigned s = 0; s < plan.streams; ++s) {
        StreamLatency sl;
        sl.stream = s;
        sl.core = s % coreCount;
        sl.open = summarize(std::move(openByStream[s]));
        sl.service = summarize(std::move(serviceByStream[s]));
        result.streams.push_back(sl);
    }
    return result;
}

} // namespace traffic
} // namespace ede
