#include "traffic/stream_mux.hh"

#include <algorithm>

#include "common/logging.hh"
#include "trace/builder.hh"

namespace ede {
namespace traffic {
namespace {

/** Decorrelate a stream's Rng lane from the master seed. */
std::uint64_t
streamSeed(std::uint64_t seed, unsigned stream, std::uint64_t lane)
{
    // Distinct odd multipliers per lane keep the key/kind draws and
    // the arrival draws on unrelated xoshiro streams, so changing
    // the arrival spec can never perturb the generated trace.
    return seed ^ ((stream + 1) * 0x9e3779b97f4a7c15ull) ^
           (lane * 0xbf58476d1ce4e5b9ull);
}

/** Per-core generation state (mirrors apps/concurrent.cc). */
struct CoreGen
{
    explicit CoreGen(Trace &t) : b(t) {}

    TraceBuilder b;
    TempRegPool temps;
};

/** Per-stream generation state. */
struct StreamGen
{
    StreamGen(const TrafficPlan &plan, unsigned stream)
        : rng(streamSeed(plan.seed, stream, 1)),
          zipf(plan.mix.keys, plan.mix.zipfTheta),
          arrivals(plan.arrival, streamSeed(plan.seed, stream, 2))
    {
    }

    Rng rng;
    ZipfGenerator zipf;
    ArrivalProcess arrivals;
    std::uint64_t nextValue = 1;
};

/** The persist->publish ordering token (Table III lowering). */
void
emitOrderingToken(TraceBuilder &b, Config cfg)
{
    switch (cfg) {
      case Config::B:
        b.dsbSy();
        break;
      case Config::SU:
        b.dmbSt();
        break;
      case Config::IQ:
      case Config::WB:
      case Config::U:
        break;
    }
}

/** The commit-durable drain that ends every update transaction. */
void
emitCommitDrain(TraceBuilder &b, Config cfg, Edk key)
{
    switch (cfg) {
      case Config::B:
        b.dsbSy();
        break;
      case Config::SU:
        b.dmbSt();
        break;
      case Config::IQ:
      case Config::WB:
        b.waitKey(key);
        break;
      case Config::U:
        break;
    }
}

/** Zipf-keyed dependent load chain over the stream's shard. */
void
emitReadTxn(CoreGen &g, StreamGen &s, unsigned stream, int ops)
{
    RegIndex r_prev = g.temps.get();
    for (int op = 0; op < ops; ++op) {
        const std::uint64_t rank = s.zipf.next(s.rng);
        const RegIndex r_next = g.temps.get();
        // Dependent chain: base is the previous hop's destination,
        // so the transaction's memory time is serial, as a real
        // pointer-structured lookup's would be.
        g.b.ldr(r_next, r_prev, trafficKeyAddr(stream, rank));
        r_prev = r_next;
    }
}

/**
 * Write-ahead update: persist every dirtied key line with DC CVAP,
 * order the publishing store behind the persists (ordering token /
 * EDE key operands), then drain to make the commit durable.
 */
void
emitUpdateTxn(CoreGen &g, StreamGen &s, Config cfg, unsigned stream,
              unsigned core, int ops)
{
    const bool ede = configUsesEde(cfg);
    const Edk k = trafficCoreKey(core);

    std::uint64_t committed = 0;
    for (int op = 0; op < ops; ++op) {
        const std::uint64_t rank = s.zipf.next(s.rng);
        const Addr addr = trafficKeyAddr(stream, rank);
        const std::uint64_t val = s.nextValue++;
        const RegIndex r_v = g.temps.get();
        const RegIndex r_b = g.temps.get();
        g.b.movImm(r_v, static_cast<std::int64_t>(val));
        g.b.str(r_v, r_b, addr, val);
        g.b.cvap(r_b, addr, ede ? EdkOps{k, kZeroEdk} : EdkOps{});
        committed = val;
    }
    emitOrderingToken(g.b, cfg);

    // Publish the commit record behind the key persists.
    const RegIndex r_c = g.temps.get();
    const RegIndex r_p = g.temps.get();
    g.b.movImm(r_c, static_cast<std::int64_t>(committed));
    g.b.str(r_c, r_p, trafficPublishAddr(stream), committed, 0,
            ede ? EdkOps{kZeroEdk, k} : EdkOps{});
    g.b.cvap(r_p, trafficPublishAddr(stream),
             ede ? EdkOps{k, kZeroEdk} : EdkOps{});
    emitCommitDrain(g.b, cfg, k);
}

/** Warm each resident stream's shard and close the setup phase. */
void
emitPreamble(CoreGen &g, const TrafficPlan &plan, unsigned core,
             unsigned coreCount)
{
    for (unsigned s = core; s < plan.streams; s += coreCount) {
        const RegIndex r_v = g.temps.get();
        const RegIndex r_b = g.temps.get();
        g.b.str(r_v, r_b, trafficPublishAddr(s), 0);
    }
    g.b.dsbSy();
}

} // namespace

TrafficCheck
validateTrafficPlan(const TrafficPlan &plan, Config cfg,
                    unsigned coreCount)
{
    const auto invalid = [](const char *msg) {
        return TrafficCheck{SimErrorKind::RunRequestInvalid, msg};
    };
    if (coreCount < 1)
        return invalid("traffic plan needs >= 1 core");
    if (plan.streams < 1)
        return invalid("traffic plan needs >= 1 stream");
    if (plan.txnsPerStream < 1)
        return invalid("traffic plan needs >= 1 txn per stream");
    if (plan.totalTxns < 0)
        return invalid("traffic total txn count must be >= 0");
    if (plan.totalTxns > 0 &&
        static_cast<unsigned>(plan.totalTxns) < plan.streams) {
        return invalid("traffic plan has more streams than "
                       "transactions: every stream must issue at "
                       "least one");
    }
    if (plan.opsPerTxn < 1)
        return invalid("traffic plan needs >= 1 op per txn");
    if (plan.warmupPermille > 999)
        return invalid("traffic warmup fraction must be < 1000 "
                       "permille");
    if (plan.latencyWindows < 1 || plan.latencyWindows > 64)
        return invalid("traffic latency windows must be in [1, 64]");
    if (plan.mix.keys < 1 || plan.mix.keys > kTrafficMaxKeys)
        return invalid("traffic keyspace must be in [1, 4096]");
    if (!(plan.mix.readFraction >= 0.0 &&
          plan.mix.readFraction <= 1.0))
        return invalid("traffic read fraction must be in [0, 1]");
    if (!(plan.mix.zipfTheta >= 0.0 && plan.mix.zipfTheta < 1.0))
        return invalid("traffic zipf theta must be in [0, 1)");
    if (!(plan.arrival.meanGap > 0.0))
        return invalid("traffic mean arrival gap must be > 0");
    if (!(plan.arrival.burstFactor >= 1.0))
        return invalid("traffic burst factor must be >= 1");
    if (!(plan.arrival.pSwitch >= 0.0 && plan.arrival.pSwitch <= 1.0))
        return invalid("traffic burst switch prob must be in [0, 1]");
    if (plan.arrival.kind == ArrivalKind::ClosedPool) {
        if (plan.arrival.poolSize < 1)
            return invalid("closed-pool arrivals need >= 1 client");
        if (!(plan.arrival.thinkTime >= 0.0))
            return invalid("closed-pool think time must be >= 0");
    }

    // Overload-policy knobs: validated only when an admission policy
    // gates the replay; retry/degrade knobs without one are a
    // contradiction worth a typed rejection rather than a silent
    // no-op.
    const OverloadPolicy &pol = plan.policy;
    if (!pol.active() && (pol.retryBudget > 0 || pol.degrade)) {
        return invalid("overload retry/degrade knobs need an "
                       "admission policy");
    }
    if (pol.active()) {
        if (pol.queueDepth < 1)
            return invalid("overload queue depth must be >= 1");
        if (pol.admission == AdmissionKind::Deadline &&
            pol.deadline < 1) {
            return invalid("deadline admission needs a deadline "
                           ">= 1 cycle");
        }
        if (pol.admission == AdmissionKind::TokenBucket &&
            (pol.tokenRatePerKCycle < 1 || pol.tokenBurst < 1)) {
            return invalid("token-bucket admission needs rate and "
                           "burst >= 1");
        }
        if (pol.retryBudget > 0 &&
            (pol.retryBackoffBase < 1 ||
             pol.retryBackoffCap < pol.retryBackoffBase)) {
            return invalid("retry backoff needs base >= 1 and "
                           "cap >= base");
        }
        if (pol.degrade) {
            if (pol.shedWindow < 1)
                return invalid("degrade shed window must be >= 1");
            if (pol.degradePermille < 1 || pol.degradePermille > 1000)
                return invalid("degrade threshold must be in "
                               "[1, 1000] permille");
            if (pol.recoverPermille >= pol.degradePermille)
                return invalid("degrade hysteresis needs recover "
                               "threshold < degrade threshold");
        }
    }
    if (configUsesEde(cfg) && coreCount > kMaxTrafficEdeCores) {
        return TrafficCheck{
            SimErrorKind::CoreCountKeyExhausted,
            "EDE traffic dedicates one real key per core"};
    }
    return {};
}

TrafficWorkload
buildTrafficWorkload(const TrafficPlan &plan, Config cfg,
                     unsigned coreCount)
{
    ede_assert(validateTrafficPlan(plan, cfg, coreCount).ok(),
               "buildTrafficWorkload requires a validated plan");

    TrafficWorkload wl;
    wl.traces.resize(coreCount);
    std::vector<CoreGen> gens;
    gens.reserve(coreCount);
    for (Trace &t : wl.traces)
        gens.emplace_back(t);

    std::vector<StreamGen> streams;
    streams.reserve(plan.streams);
    for (unsigned s = 0; s < plan.streams; ++s)
        streams.emplace_back(plan, s);

    wl.preambleEnd.resize(coreCount);
    for (unsigned c = 0; c < coreCount; ++c) {
        emitPreamble(gens[c], plan, c, coreCount);
        wl.preambleEnd[c] = wl.traces[c].size();
    }

    // Round-robin schedule: every round issues one transaction per
    // stream, streams in id order.  A core therefore serves its
    // resident streams in a fixed rotation that depends only on
    // (plan shape, coreCount) -- never on arrivals -- which is what
    // keeps the trace (and the machine's closed-loop cycles)
    // bit-identical across offered loads.  Stream 0 always carries
    // the largest per-stream share, so its count bounds the rounds.
    const bool closed = plan.arrival.kind == ArrivalKind::ClosedPool;
    std::uint64_t total = 0;
    for (unsigned s = 0; s < plan.streams; ++s)
        total += trafficTxnsOfStream(plan, s);
    wl.txns.reserve(total);
    const std::uint64_t rounds = trafficTxnsOfStream(plan, 0);
    for (std::uint64_t t = 0; t < rounds; ++t) {
        for (unsigned s = 0; s < plan.streams; ++s) {
            if (t >= trafficTxnsOfStream(plan, s))
                continue;
            const unsigned core = s % coreCount;
            StreamGen &sg = streams[s];

            TxnRecord rec;
            rec.stream = s;
            rec.core = core;
            rec.index = static_cast<std::uint32_t>(t);
            rec.kind = drawTxnKind(plan.mix, sg.rng);
            if (closed)
                rec.think = sg.arrivals.thinkGap();
            else
                rec.arrival = sg.arrivals.next();
            rec.first = wl.traces[core].size();
            if (rec.kind == TxnKind::Read)
                emitReadTxn(gens[core], sg, s, plan.opsPerTxn);
            else
                emitUpdateTxn(gens[core], sg, cfg, s, core,
                              plan.opsPerTxn);
            rec.last = wl.traces[core].size();
            wl.txns.push_back(rec);
        }
    }
    return wl;
}

} // namespace traffic
} // namespace ede
