/**
 * @file
 * StreamMux: multiplex open-loop transaction streams onto the N-core
 * persistent heap and report exact per-transaction latency.
 *
 * The plan describes a request-serving service: `streams` concurrent
 * client streams, each issuing `txnsPerStream` transactions of
 * `opsPerTxn` operations against its own shard of the persistent
 * keyspace (zipfian-skewed within the shard, YCSB-style read/update
 * mix), with arrivals from a seeded Poisson or bursty (MMPP)
 * process.  Streams are assigned to cores round-robin; a core serves
 * its streams' transactions in a fixed round-robin schedule.
 *
 * Timing model -- run once, sweep arrivals for free:
 *
 * The machine executes each core's request schedule *closed-loop*
 * (back-to-back), with per-trace-index completion recording on.  The
 * schedule is deliberately independent of the arrival process, so
 * one timing simulation yields the exact per-transaction service
 * times S_i (differences of completion cycles over the transaction's
 * trace span).  Open-loop latency is then the Lindley recursion over
 * the fixed per-core schedule:
 *
 *     start_i  = max(A_i, depart_{i-1})
 *     depart_i = start_i + S_i
 *     open_i   = depart_i - A_i
 *
 * where A_i is the transaction's seeded arrival stamp.  Everything
 * is integer cycles, so the records are bit-identical across --jobs
 * counts and ticking modes; and because arrivals never perturb the
 * trace, the closed-loop cycle count is *identical* across offered
 * loads while the open-loop tail diverges past the overload knee --
 * the separation bench/fig_traffic gates on.
 *
 * Persistence lowering follows Table III exactly as the concurrent
 * kernels do (apps/concurrent.hh): every update persists its lines
 * with DC CVAP, orders the publishing store behind the persist (DSB
 * SY / DMB ST / EDE key operands / nothing), and ends with a durable
 * ack drain (WAIT on the core's key under EDE instead of a full
 * fence) -- the fence-elimination win lands directly in the service
 * times and therefore in the tail.
 */

#ifndef EDE_TRAFFIC_STREAM_MUX_HH
#define EDE_TRAFFIC_STREAM_MUX_HH

#include <cstdint>
#include <vector>

#include "pipeline/sim_error.hh"
#include "sim/config.hh"
#include "trace/trace.hh"
#include "traffic/arrival.hh"
#include "traffic/latency.hh"
#include "traffic/opmix.hh"
#include "traffic/policy.hh"

namespace ede {
namespace traffic {

/** The full description of one open-loop traffic run. */
struct TrafficPlan
{
    unsigned streams = 4;     ///< Concurrent client streams.
    int txnsPerStream = 64;   ///< Transactions per stream.

    /**
     * When > 0, overrides txnsPerStream with an exact run-wide
     * transaction count distributed round-robin (stream s gets
     * floor(total/streams) plus one of the remainder).  Must be >=
     * streams: a plan asking for more streams than transactions is
     * rejected with a RunRequestInvalid detail instead of silently
     * producing empty streams.
     */
    int totalTxns = 0;

    int opsPerTxn = 4;        ///< Key operations per transaction.
    OpMix mix;                ///< Read/update split + zipf skew.
    ArrivalSpec arrival;      ///< Offered-load point.

    /**
     * First fraction of each stream's transactions (by index,
     * permille) classified as warmup and excluded from the
     * steady-state headline summaries.
     */
    unsigned warmupPermille = 125;

    /** Progress windows in the per-window latency series (1..64). */
    unsigned latencyWindows = 8;

    OverloadPolicy policy;    ///< Overload control (inactive = none).

    std::uint64_t seed = 42;  ///< Master seed (keys, kinds, arrivals).
};

/** Transactions stream @p s issues under @p plan. */
constexpr std::uint64_t
trafficTxnsOfStream(const TrafficPlan &plan, unsigned s)
{
    if (plan.totalTxns <= 0)
        return static_cast<std::uint64_t>(plan.txnsPerStream);
    const std::uint64_t total =
        static_cast<std::uint64_t>(plan.totalTxns);
    return total / plan.streams + (s < total % plan.streams ? 1 : 0);
}

/**
 * @name Shared NVM layout.
 *
 * Each stream owns a 1 MiB shard of the persistent heap well above
 * the concurrent kernels' arenas: its keyspace (64 B per key) plus a
 * publish record on its own 256 B media line, so two streams'
 * persist histories never entangle.  Sharding keys per stream keeps
 * the functional-first generation sound -- values are resolved
 * host-side per stream, so the timing interleave across cores can
 * never change an outcome.
 */
/// @{
inline constexpr Addr kTrafficNvmBase = 3ull << 30;
inline constexpr Addr kTrafficShardStride = 0x100000;
inline constexpr std::uint64_t kTrafficMaxKeys = 4096;

constexpr Addr
trafficShardBase(unsigned stream)
{
    return kTrafficNvmBase + stream * kTrafficShardStride;
}

/** Key @p rank of @p stream's shard (one 64 B line per key). */
constexpr Addr
trafficKeyAddr(unsigned stream, std::uint64_t rank)
{
    return trafficShardBase(stream) + 64ull * rank;
}

/** Stream @p stream's publish record (own 256 B media line). */
constexpr Addr
trafficPublishAddr(unsigned stream)
{
    return trafficShardBase(stream) + 0x80000;
}

/** The EDK key core @p core's persists define (EDE configs). */
constexpr Edk
trafficCoreKey(unsigned core)
{
    return static_cast<Edk>(1 + core);
}

/** Most cores an EDE configuration supports (one real key each). */
inline constexpr unsigned kMaxTrafficEdeCores = kNumEdks - 1;
/// @}

/** One transaction's schedule slot. */
struct TxnRecord
{
    unsigned stream = 0;      ///< Issuing stream.
    unsigned core = 0;        ///< Core it was multiplexed onto.
    std::uint32_t index = 0;  ///< Per-stream transaction index.
    TxnKind kind = TxnKind::Read;
    Cycle arrival = 0;        ///< Seeded arrival stamp (open kinds).
    Cycle think = 0;          ///< Preceding think gap (ClosedPool).
    std::size_t first = 0;    ///< First trace index on its core.
    std::size_t last = 0;     ///< One past its final trace index.
};

/** Per-core traces plus the transaction schedule that fills them. */
struct TrafficWorkload
{
    std::vector<Trace> traces;  ///< Index i binds to core i.

    /** Per core: trace index one past the warmup preamble. */
    std::vector<std::size_t> preambleEnd;

    /** All transactions; per-core subsequences are schedule order. */
    std::vector<TxnRecord> txns;
};

/** A plan-validation verdict (kind None means accepted). */
struct TrafficCheck
{
    SimErrorKind kind = SimErrorKind::None;
    const char *message = "";

    bool ok() const { return kind == SimErrorKind::None; }
};

/**
 * Validate @p plan against configuration @p cfg on @p coreCount
 * cores.  Returns RunRequestInvalid for malformed knobs and
 * CoreCountKeyExhausted when an EDE configuration asks for more
 * cores than the ISA has real keys; never asserts.
 */
TrafficCheck validateTrafficPlan(const TrafficPlan &plan, Config cfg,
                                 unsigned coreCount);

/**
 * Build the per-core traces and transaction schedule.  Deterministic
 * in (plan, cfg, coreCount) and independent of plan.arrival -- the
 * arrival stamps ride along in the records but never shape the
 * trace.  @pre validateTrafficPlan(...).ok().
 */
TrafficWorkload buildTrafficWorkload(const TrafficPlan &plan,
                                     Config cfg, unsigned coreCount);

// The arrival replay over measured completions lives in
// traffic/overload.hh (computeTrafficResult), where the plain
// Lindley recursion and the overload-control policies share one
// deterministic engine.

} // namespace traffic
} // namespace ede

#endif // EDE_TRAFFIC_STREAM_MUX_HH
