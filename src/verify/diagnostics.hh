/**
 * @file
 * Structured diagnostics emitted by the static EDK verifier.
 *
 * The paper's EDE contract is unsafe-if-misused: the hardware trusts
 * that key operands describe a satisfiable dependence specification.
 * The verifier turns each way of breaking that trust into a typed
 * diagnostic anchored at a trace/program index, so tooling (the fuzz
 * campaign, CI gates, future compilers) can assert on *which* rule
 * was broken and *where*, not just that verification failed.
 */

#ifndef EDE_VERIFY_DIAGNOSTICS_HH
#define EDE_VERIFY_DIAGNOSTICS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/edk.hh"

namespace ede {

/** Which well-formedness rule a diagnostic reports. */
enum class VerifyKind
{
    /** A key field holds a value outside EDK #0..#15, or a key field
     *  that the instruction form has no encoding for is nonzero. */
    InvalidKeyEncoding,
    /** A nonzero key field on an opcode with no EDE variant. */
    KeysOnNonEdeOpcode,
    /** A consumer names a key with no prior producer definition. */
    UseOfUndefinedKey,
    /** WAIT_KEY on a key that no producer ever defined. */
    WaitOnDeadKey,
    /** A producer overwrites a key whose previous definition was
     *  never consumed, waited on, or fenced: the old dependence is
     *  silently dropped by the EDM overwrite. */
    RedefineWhilePending,
    /** The key dependence graph (def -> use edges, JOIN merges
     *  included) contains a cycle: the specification is circular and
     *  unsatisfiable as an ordering contract. */
    DependenceCycle,
    /** More keys have live (unresolved) producers than the modelled
     *  EDM has slots for. */
    EdmCapacityExceeded,
    /** A definition is still pending at end of program: nothing ever
     *  ordered against it (warning). */
    UnconsumedDef,

    NumKinds,
};

constexpr std::size_t kNumVerifyKinds =
    static_cast<std::size_t>(VerifyKind::NumKinds);

/** Short stable name, e.g. for JSON counters. */
const char *verifyKindName(VerifyKind kind);

/** Diagnostic severity; only errors reject a program. */
enum class VerifySeverity { Warning, Error };

/** Index value meaning "no related instruction". */
inline constexpr std::size_t kNoInstIdx =
    static_cast<std::size_t>(-1);

/** One verifier finding, anchored at an instruction index. */
struct VerifyDiagnostic
{
    VerifyKind kind = VerifyKind::NumKinds;
    VerifySeverity severity = VerifySeverity::Error;
    std::size_t instIdx = kNoInstIdx;    ///< Offending instruction.
    std::size_t relatedIdx = kNoInstIdx; ///< E.g. the pending def.
    Edk key = kZeroEdk;                  ///< Key involved (if any).
    std::string message;                 ///< Human-readable detail.
};

/** Outcome of verifying one program. */
struct VerifyReport
{
    std::size_t instructions = 0;
    std::vector<VerifyDiagnostic> diagnostics;

    /** True when no error-severity diagnostic was emitted. */
    bool
    accepted() const
    {
        for (const VerifyDiagnostic &d : diagnostics) {
            if (d.severity == VerifySeverity::Error)
                return false;
        }
        return true;
    }

    /** The lowest-index error diagnostic (nullptr when accepted). */
    const VerifyDiagnostic *
    firstError() const
    {
        const VerifyDiagnostic *first = nullptr;
        for (const VerifyDiagnostic &d : diagnostics) {
            if (d.severity != VerifySeverity::Error)
                continue;
            if (!first || d.instIdx < first->instIdx)
                first = &d;
        }
        return first;
    }

    /** Number of diagnostics of @p kind (any severity). */
    std::size_t
    countOf(VerifyKind kind) const
    {
        std::size_t n = 0;
        for (const VerifyDiagnostic &d : diagnostics)
            n += d.kind == kind ? 1 : 0;
        return n;
    }

    /** Render every diagnostic as "idx: severity kind: message". */
    std::string describe() const;
};

} // namespace ede

#endif // EDE_VERIFY_DIAGNOSTICS_HH
