#include "verify/fuzz.hh"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>

#include "audit/auditor.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "exp/journal.hh"
#include "exp/scheduler.hh"
#include "mem/mem_system.hh"
#include "pipeline/core.hh"
#include "sim/session.hh"
#include "trace/builder.hh"
#include "verify/verifier.hh"

namespace ede {

namespace {

/** The generator confines itself to EDK #1..#12; #13..#15 are
 *  reserved for injections, so a use of them is provably undefined. */
constexpr Edk kMaxGenKey = 12;
constexpr Edk kReservedLo = 13;

enum class ProgClass { WellFormed, Malformed, HardwareFault };

/** One generated program plus the metadata the contract needs. */
struct GenProgram
{
    Trace trace;
    ProgClass cls = ProgClass::WellFormed;
    /** Index of the first instruction that deviates from the
     *  well-formed construction (kNoInstIdx when none). */
    std::size_t firstInjectedIdx = kNoInstIdx;
    std::size_t injections = 0;
    /** Hardware-fault gadget members (HardwareFault only). */
    std::size_t faultProducerIdx = kNoInstIdx;
    std::size_t faultConsumerIdx = kNoInstIdx;
    /** Producer -> consumer ordering obligations recorded while the
     *  program was still uncorrupted; auditable on any clean run. */
    std::vector<PersistObligation> pairs;
};

constexpr std::uint16_t
bit(Edk k)
{
    return static_cast<std::uint16_t>(1u << k);
}

/**
 * Emits one adversarial program, mirroring the verifier's per-key
 * state machine so well-formed construction is exact: every
 * deviation is deliberate and recorded.
 */
class ProgramGen
{
  public:
    ProgramGen(Rng &rng, std::size_t max_ops)
        : rng_(rng), maxOps_(std::max<std::size_t>(max_ops, 24)),
          b_(prog_.trace),
          nvmBase_(MemSystemParams{}.map.nvmBase())
    {
    }

    GenProgram
    generate(ProgClass cls)
    {
        prog_.cls = cls;
        b_.movImm(kBaseReg, 0x100000);
        if (cls == ProgClass::HardwareFault) {
            generateFaultGadget();
        } else {
            const std::size_t len = rng_.between(20, maxOps_);
            while (prog_.trace.size() < len) {
                if (cls == ProgClass::Malformed &&
                    prog_.injections < 2 && rng_.chance(0.06)) {
                    inject();
                } else {
                    emitWellFormed();
                }
            }
            // A malformed program must carry at least one injection.
            if (cls == ProgClass::Malformed && prog_.injections == 0)
                inject(/*force=*/true);
        }
        return std::move(prog_);
    }

  private:
    static constexpr RegIndex kBaseReg = 2;

    /** Mirror of the verifier's KeyState. */
    struct KeySt
    {
        enum S { Undef, Pending, Live, Resolved } s = Undef;
        std::uint16_t chain = 0;
        std::size_t defIdx = kNoInstIdx;
    };

    Addr dramLine(int i) { return 0x100000 + static_cast<Addr>(i) * 64; }
    Addr nvmLine(int i)
    {
        return nvmBase_ + 0x10000 + static_cast<Addr>(i) * 64;
    }
    Addr randDram() { return dramLine(static_cast<int>(rng_.below(8))); }
    Addr randNvm() { return nvmLine(static_cast<int>(rng_.below(8))); }

    /** Contribution a use of @p k would add, without transitioning. */
    std::uint16_t
    peekContribution(Edk k) const
    {
        const KeySt &ks = keys_[k];
        if (ks.s == KeySt::Pending || ks.s == KeySt::Live)
            return static_cast<std::uint16_t>(bit(k) | ks.chain);
        return 0;
    }

    /** Commit a use (verifier semantics) and record the obligation. */
    std::uint16_t
    useKey(Edk k, std::size_t idx)
    {
        KeySt &ks = keys_[k];
        const std::uint16_t m = peekContribution(k);
        if (ks.s == KeySt::Pending)
            ks.s = KeySt::Live;
        if (recordPairs_ && ks.defIdx != kNoInstIdx)
            prog_.pairs.push_back({ks.defIdx, idx, idx});
        return m;
    }

    void
    defineKey(Edk k, std::uint16_t depends_on, std::size_t idx)
    {
        keys_[k] = {KeySt::Pending,
                    static_cast<std::uint16_t>(depends_on & ~bit(k)),
                    idx};
    }

    template <typename Pred>
    std::optional<Edk>
    pickKey(Pred pred)
    {
        Edk cand[kMaxGenKey];
        std::size_t n = 0;
        for (Edk k = 1; k <= kMaxGenKey; ++k) {
            if (pred(keys_[k]))
                cand[n++] = k;
        }
        if (n == 0)
            return std::nullopt;
        return cand[rng_.below(n)];
    }

    std::optional<Edk>
    pickDefinable()
    {
        return pickKey([](const KeySt &k) {
            return k.s != KeySt::Pending;
        });
    }

    std::optional<Edk>
    pickConsumable()
    {
        return pickKey([](const KeySt &k) {
            return k.s != KeySt::Undef;
        });
    }

    void
    markInjected(std::size_t idx)
    {
        if (prog_.firstInjectedIdx == kNoInstIdx)
            prog_.firstInjectedIdx = idx;
        ++prog_.injections;
        recordPairs_ = false;
    }

    void
    emitWellFormed()
    {
        const std::uint64_t r = rng_.below(100);
        if (r < 12) {
            b_.str(pool_.get(), kBaseReg, randDram(), rng_.next());
        } else if (r < 20) {
            // Persist producer, optionally ordered after a live key.
            auto d = pickDefinable();
            if (!d) {
                b_.cvap(kBaseReg, randNvm());
                return;
            }
            const std::size_t idx =
                b_.cvap(kBaseReg, randNvm(), EdkOps{*d, 0});
            defineKey(*d, 0, idx);
        } else if (r < 32) {
            // Store producer, sometimes consuming another key too.
            auto d = pickDefinable();
            if (!d) {
                b_.str(pool_.get(), kBaseReg, randDram(), rng_.next());
                return;
            }
            Edk u = 0;
            if (rng_.chance(0.4)) {
                if (auto c = pickConsumable()) {
                    // Reject uses that would make the def circular.
                    if (!(peekContribution(*c) & bit(*d)))
                        u = *c;
                }
            }
            const std::size_t idx =
                b_.str(pool_.get(), kBaseReg, randNvm(), rng_.next(),
                       0, EdkOps{*d, u});
            const std::uint16_t m = u ? useKey(u, idx) : 0;
            defineKey(*d, m, idx);
        } else if (r < 44) {
            auto u = pickConsumable();
            if (!u) {
                b_.str(pool_.get(), kBaseReg, randDram(), rng_.next());
                return;
            }
            const std::size_t idx =
                b_.str(pool_.get(), kBaseReg, randDram(), rng_.next(),
                       0, EdkOps{0, *u});
            useKey(*u, idx);
        } else if (r < 50) {
            auto u = pickConsumable();
            if (!u) {
                b_.ldr(pool_.get(), kBaseReg, randDram());
                return;
            }
            const std::size_t idx =
                b_.ldr(pool_.get(), kBaseReg, randDram(), 0,
                       EdkOps{0, *u});
            useKey(*u, idx);
        } else if (r < 56) {
            emitJoin();
        } else if (r < 62) {
            auto u = pickConsumable();
            if (!u)
                return;
            b_.waitKey(*u);
            keys_[*u].s = KeySt::Resolved;
            keys_[*u].chain = 0;
        } else if (r < 65) {
            b_.waitAllKeys();
            resolveAll();
        } else if (r < 68) {
            b_.dsbSy();
            resolveAll();
        } else if (r < 72) {
            b_.dmbSt();
        } else if (r < 82) {
            const RegIndex a = pool_.get();
            if (rng_.chance(0.3))
                b_.mul(pool_.get(), a, a);
            else
                b_.alu(pool_.get(), a, kNoReg,
                       static_cast<std::int64_t>(rng_.below(64)));
        } else if (r < 88) {
            const std::string site =
                "b" + std::to_string(siteNo_++);
            b_.branchCond(site, pool_.get(), pool_.get(),
                          rng_.chance(0.5));
        } else if (r < 94) {
            b_.ldr(pool_.get(), kBaseReg, randDram());
        } else {
            const Addr a = randDram(); // 64-aligned: fine for STP.
            b_.stp(pool_.get(), pool_.get(), kBaseReg, a,
                   rng_.next(), rng_.next());
        }
    }

    void
    emitJoin()
    {
        auto u1 = pickConsumable();
        auto u2 = pickConsumable();
        auto d = pickDefinable();
        if (!u1 || !u2 || !d)
            return;
        const std::uint16_t mask = static_cast<std::uint16_t>(
            peekContribution(*u1) | peekContribution(*u2));
        if (mask & bit(*d))
            return; // would create a key-graph cycle; skip.
        const std::size_t idx = b_.join(*d, *u1, *u2);
        useKey(*u1, idx);
        useKey(*u2, idx);
        defineKey(*d, mask, idx);
    }

    void
    resolveAll()
    {
        for (Edk k = 1; k < kNumEdks; ++k) {
            if (keys_[k].s != KeySt::Undef) {
                keys_[k].s = KeySt::Resolved;
                keys_[k].chain = 0;
            }
        }
    }

    /** Emit one recorded malformation.  Each variant provably draws
     *  an error diagnostic at the marked index. */
    void
    inject(bool force = false)
    {
        for (int attempt = 0; attempt < 8; ++attempt) {
            switch (rng_.below(6)) {
              case 0: { // Key field outside the 4-bit encoding.
                const std::size_t idx = b_.str(
                    pool_.get(), kBaseReg, randDram(), rng_.next());
                prog_.trace.at(idx).si.edkUse = static_cast<Edk>(
                    kNumEdks + rng_.below(200));
                markInjected(idx);
                return;
              }
              case 1: { // Keys on an opcode with no EDE variant.
                const RegIndex a = pool_.get();
                const std::size_t idx = b_.alu(pool_.get(), a);
                prog_.trace.at(idx).si.edkDef = static_cast<Edk>(
                    1 + rng_.below(kNumEdks - 1));
                markInjected(idx);
                return;
              }
              case 2: { // Use of a key no producer ever defined.
                const std::size_t idx = b_.str(
                    pool_.get(), kBaseReg, randDram(), rng_.next(), 0,
                    EdkOps{0, static_cast<Edk>(
                                  kReservedLo + rng_.below(3))});
                markInjected(idx);
                return;
              }
              case 3: { // Redefine while the old def is unconsumed.
                auto p = pickKey([](const KeySt &k) {
                    return k.s == KeySt::Pending;
                });
                if (!p)
                    continue;
                const std::size_t idx = b_.str(
                    pool_.get(), kBaseReg, randNvm(), rng_.next(), 0,
                    EdkOps{*p, 0});
                markInjected(idx);
                defineKey(*p, 0, idx);
                return;
              }
              case 4: { // JOIN-built cycle in the key graph.
                injectJoinCycle();
                if (prog_.injections > 0 || !force)
                    return;
                continue;
              }
              default: { // WAIT_KEY on a dead key.
                b_.waitKey(static_cast<Edk>(
                    kReservedLo + rng_.below(3)));
                markInjected(prog_.trace.size() - 1);
                return;
              }
            }
        }
        // Deterministic fallback: always applicable.
        const std::size_t idx =
            b_.str(pool_.get(), kBaseReg, randDram(), rng_.next(), 0,
                   EdkOps{0, static_cast<Edk>(kReservedLo)});
        markInjected(idx);
    }

    /**
     * str def a; str def b; str use a; str use b;
     * join(a,b,-); join(b,a,-): the second JOIN closes a -> b -> a
     * in the key dependence graph.  Everything before it is
     * well-formed, so the recorded injection site is exactly where
     * the verifier must anchor its DependenceCycle error.
     */
    void
    injectJoinCycle()
    {
        auto a = pickDefinable();
        if (!a)
            return;
        // Temporarily mark a pending so b != a.
        const KeySt savedA = keys_[*a];
        keys_[*a].s = KeySt::Pending;
        auto b = pickDefinable();
        keys_[*a] = savedA;
        if (!b)
            return;

        std::size_t i = b_.str(pool_.get(), kBaseReg, randNvm(),
                               rng_.next(), 0, EdkOps{*a, 0});
        defineKey(*a, 0, i);
        i = b_.str(pool_.get(), kBaseReg, randNvm(), rng_.next(), 0,
                   EdkOps{*b, 0});
        defineKey(*b, 0, i);
        i = b_.str(pool_.get(), kBaseReg, randDram(), rng_.next(), 0,
                   EdkOps{0, *a});
        useKey(*a, i);
        i = b_.str(pool_.get(), kBaseReg, randDram(), rng_.next(), 0,
                   EdkOps{0, *b});
        useKey(*b, i);
        i = b_.join(*a, *b, 0);
        const std::uint16_t mb = useKey(*b, i);
        defineKey(*a, mb, i);
        // The closing JOIN is the malformation.
        markInjected(prog_.trace.size());
        i = b_.join(*b, *a, 0);
        const std::uint16_t ma = useKey(*a, i);
        defineKey(*b, ma, i);
    }

    /**
     * The only genuine-cycle shape this pipeline admits: a forged
     * *forward* srcID link (soft-error model, injected through
     * OoOCore::corruptEdeLink).  X's store data hangs off a
     * two-deep multiply chain so X cannot issue before Y has
     * dispatched and the forged X -> Y link is observable.
     */
    void
    generateFaultGadget()
    {
        for (int i = 0; i < 3; ++i)
            b_.str(pool_.get(), kBaseReg, dramLine(i), rng_.next());

        const RegIndex r0 = pool_.get();
        b_.movImm(r0, 3);
        const RegIndex d1 = pool_.get();
        const RegIndex d2 = pool_.get();
        b_.mul(d1, r0, r0);
        b_.mul(d2, d1, d1);

        const Edk k = static_cast<Edk>(1 + rng_.below(kMaxGenKey));
        const std::size_t x = b_.str(d2, kBaseReg, randNvm(),
                                     rng_.next(), 0, EdkOps{k, 0});
        defineKey(k, 0, x);
        const std::size_t y = b_.str(pool_.get(), kBaseReg,
                                     randDram(), rng_.next(), 0,
                                     EdkOps{0, k});
        useKey(k, y);
        prog_.faultProducerIdx = x;
        prog_.faultConsumerIdx = y;

        // Benign tail; keeps the ROB busy while the wedge forms.
        const std::size_t tail = rng_.between(2, 6);
        for (std::size_t i = 0; i < tail; ++i)
            b_.str(pool_.get(), kBaseReg, randDram(), rng_.next());
        if (rng_.chance(0.5)) {
            b_.waitKey(k);
            keys_[k].s = KeySt::Resolved;
        }
    }

    Rng &rng_;
    std::size_t maxOps_;
    GenProgram prog_;
    TraceBuilder b_;
    Addr nvmBase_;
    TempRegPool pool_;
    std::array<KeySt, kNumEdks> keys_{};
    bool recordPairs_ = true;
    int siteNo_ = 0;
};

/** Outcome of one pipeline run of one generated program. */
struct RunOut
{
    SimError error;
    CoreStats stats;
    std::vector<Cycle> completions;
    SimErrorKind err() const { return error.kind; }
};

RunOut
runOnce(const GenProgram &p, EnforceMode mode, EdkRecoveryMode rec)
{
    const Config cfg = mode == EnforceMode::IQ   ? Config::IQ
                       : mode == EnforceMode::WB ? Config::WB
                                                 : Config::B;
    // Stall window small enough to exercise the analyzer on ordinary
    // NVM waits (External classification), huge headroom below the
    // watchdog.
    Session session(
        SimConfig::paper(cfg)
            .withEdkRecovery(rec)
            .withEdkStallCycles(
                p.cls == ProgClass::HardwareFault ? 2'000 : 1'000)
            .withWatchdog(100'000));

    session.system().recordCompletions(true);
    if (p.cls == ProgClass::HardwareFault)
        session.system().core().corruptEdeLink(p.faultProducerIdx, 1);

    const SimResult run = session.run(RunRequest::of(p.trace));

    RunOut out;
    out.error = run.error;
    out.stats = run.stats.core;
    out.completions = session.system().completionCycles();
    return out;
}

void
dumpProgram(const GenProgram &p)
{
    std::fprintf(stderr, "--- program dump (%zu instructions) ---\n",
                 p.trace.size());
    for (std::size_t i = 0; i < p.trace.size(); ++i) {
        std::fprintf(stderr, "%4zu: %s\n", i,
                     disassemble(p.trace[i]).c_str());
    }
}

/** Per-program verdict plus the tallies merged into the report. */
struct ProgResult
{
    ProgClass cls = ProgClass::WellFormed;
    bool accepted = false;
    std::string failure; ///< Empty when the contract held.
    std::array<std::uint64_t, kNumVerifyKinds> diag{};
    std::uint64_t runs = 0;
    std::uint64_t detectorReports = 0;
    std::uint64_t fencesSynthesized = 0;
    std::uint64_t externalStalls = 0;
    std::uint64_t watchdogFirings = 0;
    std::uint64_t auditChecked = 0;
    std::uint64_t auditViolations = 0;
};

void
fail(ProgResult &res, std::size_t index, const std::string &what)
{
    if (!res.failure.empty())
        return;
    std::ostringstream os;
    os << "program " << index << ": " << what;
    res.failure = os.str();
}

/** Audit the recorded ordering pairs against a completed run. */
void
auditRun(ProgResult &res, std::size_t index, const GenProgram &p,
         const RunOut &run, const char *label)
{
    const AuditReport a =
        auditPersistOrdering(p.pairs, run.completions);
    res.auditChecked += a.checked;
    res.auditViolations += a.violations;
    if (!a.clean()) {
        std::ostringstream os;
        os << label << ": " << a.violations
           << " ordering violations (first at pair "
           << a.firstViolationOp << ")";
        fail(res, index, os.str());
    }
}

ProgResult
checkProgram(std::size_t index, const FuzzOptions &opt)
{
    Rng rng(opt.seed ^ ((index + 1) * 0x9e3779b97f4a7c15ull));
    ProgClass cls = ProgClass::WellFormed;
    const double roll = rng.real();
    if (roll < opt.faultRate)
        cls = ProgClass::HardwareFault;
    else if (roll < opt.faultRate + opt.malformRate)
        cls = ProgClass::Malformed;

    ProgramGen gen(rng, opt.maxOps);
    const GenProgram p = gen.generate(cls);

    ProgResult res;
    res.cls = cls;

    const VerifyReport vr = verifyTrace(p.trace);
    res.accepted = vr.accepted();
    for (const VerifyDiagnostic &d : vr.diagnostics)
        ++res.diag[static_cast<std::size_t>(d.kind)];

    auto tally = [&res](const RunOut &run) {
        ++res.runs;
        res.fencesSynthesized += run.stats.edkFencesSynthesized;
        res.externalStalls += run.stats.edkExternalStalls;
        if (run.err() == SimErrorKind::WatchdogNoProgress)
            ++res.watchdogFirings;
        if (run.err() == SimErrorKind::EdkDependenceCycle)
            ++res.detectorReports;
    };

    auto expect_clean = [&](const RunOut &run, const char *label,
                            bool no_stuck) {
        tally(run);
        if (run.err() != SimErrorKind::None) {
            fail(res, index,
                 std::string(label) + ": run aborted with " +
                     simErrorKindName(run.err()));
            if (opt.dumpFailures) {
                dumpProgram(p);
                std::fputs(run.error.describe().c_str(), stderr);
            }
            return false;
        }
        if (run.stats.retired != p.trace.size()) {
            std::ostringstream os;
            os << label << ": retired " << run.stats.retired
               << " of " << p.trace.size();
            fail(res, index, os.str());
            return false;
        }
        if (no_stuck && run.stats.edkStuckDetected != 0) {
            fail(res, index,
                 std::string(label) +
                     ": analyzer falsely reported a stuck chain");
            return false;
        }
        return true;
    };

    switch (cls) {
      case ProgClass::WellFormed: {
        if (!res.accepted) {
            fail(res, index, "well-formed program rejected: " +
                                 vr.describe());
            if (opt.dumpFailures)
                dumpProgram(p);
            break;
        }
        for (EnforceMode mode :
             {EnforceMode::IQ, EnforceMode::WB}) {
            const char *label = mode == EnforceMode::IQ
                                    ? "well-formed IQ"
                                    : "well-formed WB";
            const RunOut run =
                runOnce(p, mode, EdkRecoveryMode::Report);
            if (expect_clean(run, label, /*no_stuck=*/true))
                auditRun(res, index, p, run, label);
        }
        break;
      }
      case ProgClass::Malformed: {
        if (p.injections == 0) {
            fail(res, index, "malformed program has no injections");
            break;
        }
        if (res.accepted) {
            fail(res, index,
                 "malformed program accepted despite injection at " +
                     std::to_string(p.firstInjectedIdx));
            break;
        }
        const VerifyDiagnostic *first = vr.firstError();
        if (first && first->instIdx < p.firstInjectedIdx) {
            std::ostringstream os;
            os << "error reported at " << first->instIdx
               << " before the first injection at "
               << p.firstInjectedIdx << ": " << first->message;
            fail(res, index, os.str());
            break;
        }
        // Static malformations are still deadlock-free to execute:
        // degrade mode must carry every one to completion with the
        // uncorrupted prefix correctly ordered.
        for (EnforceMode mode :
             {EnforceMode::IQ, EnforceMode::WB}) {
            const char *label = mode == EnforceMode::IQ
                                    ? "malformed IQ degrade"
                                    : "malformed WB degrade";
            const RunOut run =
                runOnce(p, mode, EdkRecoveryMode::Degrade);
            if (expect_clean(run, label, /*no_stuck=*/true))
                auditRun(res, index, p, run, label);
        }
        break;
      }
      case ProgClass::HardwareFault: {
        if (!res.accepted) {
            fail(res, index,
                 "fault-gadget program statically rejected: " +
                     vr.describe());
            break;
        }
        // IQ + Report: the detector must name the cycle, well
        // before the watchdog window.
        {
            const RunOut run =
                runOnce(p, EnforceMode::IQ, EdkRecoveryMode::Report);
            tally(run);
            if (run.err() != SimErrorKind::EdkDependenceCycle) {
                fail(res, index,
                     std::string("fault IQ report: expected "
                                 "edk-dependence-cycle, got ") +
                         simErrorKindName(run.err()));
                if (opt.dumpFailures) {
                    dumpProgram(p);
                    std::fputs(run.error.describe().c_str(), stderr);
                }
            } else {
                const auto &chain = run.error.edkChain;
                const bool names_gadget = std::any_of(
                    chain.begin(), chain.end(),
                    [&](const EdkChainNode &n) {
                        return n.traceIdx == p.faultProducerIdx ||
                               n.traceIdx == p.faultConsumerIdx;
                    });
                if (chain.empty() || !names_gadget) {
                    fail(res, index,
                         "fault IQ report: chain does not name the "
                         "gadget");
                }
            }
        }
        // IQ + Degrade: the run must complete via synthesized
        // fences, and the gadget's own ordering pair must hold.
        {
            const RunOut run = runOnce(p, EnforceMode::IQ,
                                       EdkRecoveryMode::Degrade);
            if (expect_clean(run, "fault IQ degrade",
                             /*no_stuck=*/false)) {
                if (run.stats.edkFencesSynthesized == 0) {
                    fail(res, index,
                         "fault IQ degrade: completed without "
                         "synthesizing a fence");
                }
                auditRun(res, index, p, run, "fault IQ degrade");
            }
        }
        // WB: the insertion-time CAM check clears the dangling
        // forward tag; the same corruption must be harmless.
        {
            const RunOut run =
                runOnce(p, EnforceMode::WB, EdkRecoveryMode::Report);
            if (expect_clean(run, "fault WB", /*no_stuck=*/true))
                auditRun(res, index, p, run, "fault WB");
        }
        break;
      }
    }
    return res;
}

constexpr const char *kProgResultMagic = "ede-fuzz-prog-v1";

/** ProgResult as one whitespace-token line (worker wire format). */
std::string
serializeProgResult(const ProgResult &res)
{
    std::ostringstream os;
    os << kProgResultMagic << ' ' << static_cast<int>(res.cls) << ' '
       << (res.accepted ? 1 : 0) << ' ' << res.runs << ' '
       << res.detectorReports << ' ' << res.fencesSynthesized << ' '
       << res.externalStalls << ' ' << res.watchdogFirings << ' '
       << res.auditChecked << ' ' << res.auditViolations;
    for (std::uint64_t d : res.diag)
        os << ' ' << d;
    os << ' ' << exp::journalEscape(res.failure);
    return os.str();
}

std::optional<ProgResult>
deserializeProgResult(const std::string &text)
{
    std::istringstream is(text);
    std::string magic;
    int cls = 0, accepted = 0;
    ProgResult res;
    if (!(is >> magic >> cls >> accepted >> res.runs >>
          res.detectorReports >> res.fencesSynthesized >>
          res.externalStalls >> res.watchdogFirings >>
          res.auditChecked >> res.auditViolations) ||
        magic != kProgResultMagic || cls < 0 ||
        cls > static_cast<int>(ProgClass::HardwareFault)) {
        return std::nullopt;
    }
    res.cls = static_cast<ProgClass>(cls);
    res.accepted = accepted != 0;
    for (std::uint64_t &d : res.diag) {
        if (!(is >> d))
            return std::nullopt;
    }
    std::string escaped;
    if (!(is >> escaped))
        return std::nullopt;
    res.failure = exp::journalUnescape(escaped);
    return res;
}

} // namespace

std::string
FuzzReport::describe() const
{
    std::ostringstream os;
    os << programs << " programs (" << wellFormed << " well-formed, "
       << malformed << " malformed, " << hardwareFault
       << " hardware-fault), " << accepted << " accepted, "
       << rejected << " rejected\n";
    os << "static diagnostics:";
    bool any = false;
    for (std::size_t k = 0; k < kNumVerifyKinds; ++k) {
        if (!diagnosticsByKind[k])
            continue;
        os << " " << verifyKindName(static_cast<VerifyKind>(k)) << "="
           << diagnosticsByKind[k];
        any = true;
    }
    if (!any)
        os << " none";
    os << "\n";
    os << runs << " pipeline runs: " << detectorReports
       << " detector reports, " << fencesSynthesized
       << " fences synthesized, " << externalStalls
       << " external-stall classifications, " << watchdogFirings
       << " watchdog firings\n";
    os << "ordering audit: " << auditChecked << " pairs checked, "
       << auditViolations << " violations\n";
    os << "contract: "
       << (contractHolds() ? "HOLDS" : "VIOLATED") << " ("
       << violations << " violating programs, " << quarantined
       << " quarantined)\n";
    for (const std::string &f : failures)
        os << "  " << f << "\n";
    for (const std::string &q : quarantineFailures)
        os << "  " << q << "\n";
    return os.str();
}

FuzzReport
runVerifyFuzz(const FuzzOptions &options)
{
    if (options.isolate && !exp::processIsolationSupported())
        ede_fatal("process isolation is not supported on this platform");

    exp::Scheduler sched(options.jobs);
    FuzzReport report;

    std::vector<std::optional<ProgResult>> slots(options.programs);
    std::vector<std::optional<exp::JobFailure>> poisoned(
        options.programs);
    auto checkIndex = [&](std::size_t i) {
        if (!options.isolate) {
            slots[i] = checkProgram(i, options);
            return;
        }
        const exp::WorkerRun run = exp::runWithRetry(
            [&]() -> std::string {
                if (i == options.chaosCrashIndex)
                    std::abort();
                return serializeProgResult(checkProgram(i, options));
            },
            options.limits, options.retry,
            /*jitterSeed=*/options.seed ^
                ((i + 1) * 0x9e3779b97f4a7c15ull));
        if (run.ok()) {
            if (std::optional<ProgResult> r =
                    deserializeProgResult(run.payload)) {
                slots[i] = std::move(*r);
                return;
            }
            exp::JobFailure protocol;
            protocol.outcome = exp::JobOutcome::Crashed;
            protocol.attempts = run.failure.attempts;
            protocol.message =
                "worker payload failed fuzz-result validation";
            poisoned[i] = std::move(protocol);
        } else {
            poisoned[i] = run.failure;
        }
        ede_warn("fuzz program ", i, " quarantined: ",
                 poisoned[i]->describe());
    };

    if (options.isolate) {
        sched.run(options.programs, checkIndex,
                  exp::FailureMode::KeepGoing);
    } else {
        sched.parallelFor(options.programs, checkIndex);
    }

    report.programs = options.programs;
    for (std::size_t i = 0; i < options.programs; ++i) {
        if (!slots[i]) {
            ++report.quarantined;
            if (report.quarantineFailures.size() <
                options.maxFailures) {
                report.quarantineFailures.push_back(
                    "program " + std::to_string(i) +
                    " quarantined: " +
                    (poisoned[i] ? poisoned[i]->describe()
                                 : std::string("no worker verdict")));
            }
            continue;
        }
        const ProgResult &r = *slots[i];
        switch (r.cls) {
          case ProgClass::WellFormed:
            ++report.wellFormed;
            break;
          case ProgClass::Malformed:
            ++report.malformed;
            break;
          case ProgClass::HardwareFault:
            ++report.hardwareFault;
            break;
        }
        ++(r.accepted ? report.accepted : report.rejected);
        for (std::size_t k = 0; k < kNumVerifyKinds; ++k)
            report.diagnosticsByKind[k] += r.diag[k];
        report.runs += r.runs;
        report.detectorReports += r.detectorReports;
        report.fencesSynthesized += r.fencesSynthesized;
        report.externalStalls += r.externalStalls;
        report.watchdogFirings += r.watchdogFirings;
        report.auditChecked += r.auditChecked;
        report.auditViolations += r.auditViolations;
        if (!r.failure.empty()) {
            ++report.violations;
            if (report.failures.size() < options.maxFailures)
                report.failures.push_back(r.failure);
        }
    }
    return report;
}

} // namespace ede
