/**
 * @file
 * Seeded malformed-program fuzz campaign for the EDK verifier and
 * the runtime dependence-cycle detector.
 *
 * The campaign generates thousands of adversarial EDE programs and
 * enforces the verifier/pipeline contract in both directions:
 *
 *  - programs the generator built to be *well-formed* must be
 *    accepted by the static verifier, and must then run to
 *    completion on both enforcement designs (IQ and WB) with no
 *    watchdog firing, no runtime stuck-chain report, and a clean
 *    persist-ordering audit over every produced->consumed key pair;
 *
 *  - programs with *recorded malformations* must be rejected with
 *    the first error diagnostic at or after the first injection
 *    site, and -- because all static malformations are still
 *    deadlock-free to execute -- must complete under
 *    EdkRecoveryMode::Degrade with the ordering audit clean over
 *    the uncorrupted program prefix;
 *
 *  - programs carrying a *hardware-fault gadget* (a forged forward
 *    srcID link via OoOCore::corruptEdeLink, the only way this
 *    pipeline can form a genuine cycle) must pass the static
 *    verifier, be caught by the runtime detector in IQ mode well
 *    before the watchdog, complete under Degrade with at least one
 *    synthesized fence, and complete untouched in WB mode (whose
 *    insertion-time CAM check clears dangling forward tags).
 *
 * Programs are generated per-index from a splitmix-decorrelated seed
 * and run on the exp::Scheduler, so `--jobs N` is bit-identical to
 * serial execution.
 */

#ifndef EDE_VERIFY_FUZZ_HH
#define EDE_VERIFY_FUZZ_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/worker.hh"
#include "verify/diagnostics.hh"

namespace ede {

/** Campaign configuration. */
struct FuzzOptions
{
    /** chaosCrashIndex value meaning "no chaos hook". */
    static constexpr std::size_t kNoChaos =
        static_cast<std::size_t>(-1);

    std::uint64_t seed = 1;      ///< Campaign root seed.
    std::size_t programs = 2000; ///< Programs to generate.
    std::size_t maxOps = 80;     ///< Generator length cap per program.
    unsigned jobs = 0;           ///< Worker threads; 0 = hardware.
    double malformRate = 0.45;   ///< Fraction with static malformations.
    double faultRate = 0.10;     ///< Fraction with hardware-fault gadgets.
    std::size_t maxFailures = 8; ///< Failure descriptions to keep.
    /** Dump the disassembly and diagnostics of every contract
     *  violation to stderr (debugging aid). */
    bool dumpFailures = false;

    /**
     * Fork one worker per program: a crash, hang or OOM while
     * checking one adversarial program quarantines that program
     * (tallied + reported, campaign completes) instead of killing
     * the whole campaign.  Results are bit-identical to the
     * in-process path.
     */
    bool isolate = false;

    exp::WorkerLimits limits;  ///< Per-program bounds (isolate only).
    exp::RetryPolicy retry;    ///< Transient-failure retries.

    /**
     * Test/chaos hook: the program at this index calls abort()
     * inside its isolated worker -- how tests and the CI chaos job
     * provoke a deterministic quarantine.  kNoChaos disables it.
     */
    std::size_t chaosCrashIndex = kNoChaos;
};

/** Aggregate campaign outcome. */
struct FuzzReport
{
    std::size_t programs = 0;
    std::size_t wellFormed = 0;
    std::size_t malformed = 0;
    std::size_t hardwareFault = 0;

    std::size_t accepted = 0;       ///< Verifier verdicts.
    std::size_t rejected = 0;

    /** Static diagnostics tallied across every program. */
    std::array<std::uint64_t, kNumVerifyKinds> diagnosticsByKind{};

    std::uint64_t runs = 0;             ///< Pipeline runs executed.
    std::uint64_t detectorReports = 0;  ///< Runtime stuck-chain aborts.
    std::uint64_t fencesSynthesized = 0;///< Degrade-mode gate releases.
    std::uint64_t externalStalls = 0;   ///< Long-latency classifications.
    std::uint64_t watchdogFirings = 0;  ///< Must stay zero.
    std::uint64_t auditChecked = 0;     ///< Ordering pairs audited.
    std::uint64_t auditViolations = 0;  ///< Must stay zero.

    std::size_t violations = 0; ///< Programs that broke the contract.
    std::vector<std::string> failures; ///< First few violations.

    /** Programs whose isolated worker never produced a verdict. */
    std::size_t quarantined = 0;
    std::vector<std::string> quarantineFailures; ///< First few.

    /**
     * True when every generated program honoured the contract.  A
     * quarantined program has *no* verdict, so it counts against the
     * contract: the campaign completed, but not every program was
     * checked.
     */
    bool contractHolds() const
    {
        return violations == 0 && quarantined == 0;
    }

    /** Multi-line human-readable summary. */
    std::string describe() const;
};

/** Run the campaign. */
FuzzReport runVerifyFuzz(const FuzzOptions &options);

} // namespace ede

#endif // EDE_VERIFY_FUZZ_HH
