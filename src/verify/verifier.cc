#include "verify/verifier.hh"

#include <array>
#include <cstdint>
#include <sstream>
#include <string_view>

namespace ede {

const char *
verifyKindName(VerifyKind kind)
{
    switch (kind) {
      case VerifyKind::InvalidKeyEncoding:
        return "invalid-key-encoding";
      case VerifyKind::KeysOnNonEdeOpcode:
        return "keys-on-non-ede-opcode";
      case VerifyKind::UseOfUndefinedKey:
        return "use-of-undefined-key";
      case VerifyKind::WaitOnDeadKey:
        return "wait-on-dead-key";
      case VerifyKind::RedefineWhilePending:
        return "redefine-while-pending";
      case VerifyKind::DependenceCycle:
        return "dependence-cycle";
      case VerifyKind::EdmCapacityExceeded:
        return "edm-capacity-exceeded";
      case VerifyKind::UnconsumedDef:
        return "unconsumed-def";
      case VerifyKind::NumKinds:
        break;
    }
    return "unknown";
}

std::string
VerifyReport::describe() const
{
    std::ostringstream os;
    os << instructions << " instructions, " << diagnostics.size()
       << " diagnostics"
       << (accepted() ? " (accepted)" : " (rejected)") << "\n";
    for (const VerifyDiagnostic &d : diagnostics) {
        os << "  #" << d.instIdx << ": "
           << (d.severity == VerifySeverity::Error ? "error"
                                                   : "warning")
           << " " << verifyKindName(d.kind) << ": " << d.message;
        if (d.relatedIdx != kNoInstIdx)
            os << " (see #" << d.relatedIdx << ")";
        os << "\n";
    }
    return os.str();
}

namespace {

using KeyMask = std::uint16_t;

constexpr KeyMask
bit(Edk k)
{
    return static_cast<KeyMask>(1u << k);
}

/** Per-key dataflow state. */
struct KeyState
{
    enum S
    {
        Undefined, ///< No producer ever named this key.
        Pending,   ///< Defined; nothing ordered against it yet.
        Live,      ///< Consumed at least once; not yet resolved.
        Resolved,  ///< Waited on or fenced; producer complete.
    };

    S s = Undefined;
    std::size_t defIdx = kNoInstIdx; ///< Most recent definition.
    KeyMask chain = 0; ///< Keys this definition transitively orders after.
};

class Verifier
{
  public:
    explicit Verifier(const VerifyOptions &options)
        : options_(options) {}

    void
    step(const StaticInst &si, std::size_t idx)
    {
        if (!validateFields(si, idx))
            return;

        switch (si.op) {
          case Op::DsbSy:
          case Op::WaitAllKeys:
            resolveAll();
            break;
          case Op::WaitKey:
            waitKey(si.edkUse, idx);
            break;
          case Op::Join: {
            KeyMask mask = 0;
            if (edkIsReal(si.edkUse))
                mask |= use(si.edkUse, idx);
            if (edkIsReal(si.edkUse2))
                mask |= use(si.edkUse2, idx);
            if (edkIsReal(si.edkDef))
                define(si.edkDef, mask, idx);
            break;
          }
          default:
            if (opAllowsEdkOperands(si.op)) {
                KeyMask mask = 0;
                if (edkIsReal(si.edkUse))
                    mask = use(si.edkUse, idx);
                if (edkIsReal(si.edkDef))
                    define(si.edkDef, mask, idx);
            }
            break;
        }
    }

    VerifyReport
    finish(std::size_t instructions)
    {
        if (options_.warnUnconsumed) {
            for (int k = 1; k < kNumEdks; ++k) {
                const KeyState &ks = keys_[k];
                if (ks.s != KeyState::Pending)
                    continue;
                emit(VerifyKind::UnconsumedDef,
                     VerifySeverity::Warning, ks.defIdx, kNoInstIdx,
                     static_cast<Edk>(k),
                     keyMsg(k, "defined but never consumed, waited "
                               "on, or fenced"));
            }
        }
        report_.instructions = instructions;
        return std::move(report_);
    }

  private:
    static std::string
    keyMsg(int key, std::string_view what)
    {
        std::ostringstream os;
        os << "EDK #" << key << " " << what;
        return os.str();
    }

    void
    emit(VerifyKind kind, VerifySeverity severity, std::size_t idx,
         std::size_t related, Edk key, std::string message)
    {
        VerifyDiagnostic d;
        d.kind = kind;
        d.severity = severity;
        d.instIdx = idx;
        d.relatedIdx = related;
        d.key = key;
        d.message = std::move(message);
        report_.diagnostics.push_back(std::move(d));
    }

    /**
     * Field-shape validation.  @return true when the semantic pass
     * should run over this instruction.
     */
    bool
    validateFields(const StaticInst &si, std::size_t idx)
    {
        const bool any_raw = si.edkDef || si.edkUse || si.edkUse2;
        if (!opAllowsEdkOperands(si.op)) {
            if (any_raw) {
                emit(VerifyKind::KeysOnNonEdeOpcode,
                     VerifySeverity::Error, idx, kNoInstIdx, kZeroEdk,
                     std::string(opName(si.op)) +
                         " has no EDE key operands");
                return false;
            }
            // Keyless ops still run the semantic pass: DSB SY
            // resolves every live key.
            return true;
        }

        bool ok = true;
        auto check_range = [&](Edk field, const char *name) {
            if (!edkIsValid(field)) {
                std::ostringstream os;
                os << name << " key " << static_cast<int>(field)
                   << " is outside EDK #0..#" << (kNumEdks - 1);
                emit(VerifyKind::InvalidKeyEncoding,
                     VerifySeverity::Error, idx, kNoInstIdx,
                     kZeroEdk, os.str());
                ok = false;
            }
        };
        check_range(si.edkDef, "def");
        check_range(si.edkUse, "use");
        check_range(si.edkUse2, "use2");

        if (si.op != Op::Join && si.edkUse2 != kZeroEdk) {
            emit(VerifyKind::InvalidKeyEncoding, VerifySeverity::Error,
                 idx, kNoInstIdx, kZeroEdk,
                 std::string(opName(si.op)) +
                     " has no second use-key encoding");
            ok = false;
        }
        // The assembler encodes wait_key with def == use (Section
        // IV-B2); the trace layer leaves def zero.  Both are valid.
        if (si.op == Op::WaitKey &&
            (!edkIsReal(si.edkUse) ||
             (si.edkDef != si.edkUse && si.edkDef != kZeroEdk))) {
            emit(VerifyKind::InvalidKeyEncoding, VerifySeverity::Error,
                 idx, kNoInstIdx, si.edkUse,
                 "wait_key must name one real key");
            ok = false;
        }
        if (si.op == Op::WaitAllKeys && any_raw) {
            emit(VerifyKind::InvalidKeyEncoding, VerifySeverity::Error,
                 idx, kNoInstIdx, kZeroEdk,
                 "wait_all_keys takes no key operands");
            ok = false;
        }
        return ok;
    }

    /**
     * A consumer names @p k.  @return the dependence mask the use
     * contributes to a definition on the same instruction.
     */
    KeyMask
    use(Edk k, std::size_t idx)
    {
        KeyState &ks = keys_[k];
        switch (ks.s) {
          case KeyState::Undefined:
            emit(VerifyKind::UseOfUndefinedKey, VerifySeverity::Error,
                 idx, kNoInstIdx, k,
                 keyMsg(k, "consumed but never defined"));
            return 0;
          case KeyState::Pending:
            ks.s = KeyState::Live;
            [[fallthrough]];
          case KeyState::Live:
            return static_cast<KeyMask>(bit(k) | ks.chain);
          case KeyState::Resolved:
            // The producer provably completed at the resolve point;
            // the dependence is satisfied trivially and carries no
            // transitive ordering.
            return 0;
        }
        return 0;
    }

    void
    define(Edk k, KeyMask depends_on, std::size_t idx)
    {
        KeyState &ks = keys_[k];
        if (ks.s == KeyState::Pending) {
            emit(VerifyKind::RedefineWhilePending,
                 VerifySeverity::Error, idx, ks.defIdx, k,
                 keyMsg(k, "redefined while its previous definition "
                           "is unconsumed; the EDM overwrite drops "
                           "that dependence"));
        }
        if (depends_on & bit(k)) {
            emit(VerifyKind::DependenceCycle, VerifySeverity::Error,
                 idx, ks.defIdx, k,
                 keyMsg(k, "definition transitively orders after "
                           "itself in the key dependence graph"));
        }
        ks.s = KeyState::Pending;
        ks.defIdx = idx;
        ks.chain = static_cast<KeyMask>(depends_on & ~bit(k));

        std::size_t live = 0;
        for (int i = 1; i < kNumEdks; ++i) {
            const KeyState::S s = keys_[i].s;
            live += (s == KeyState::Pending || s == KeyState::Live)
                ? 1 : 0;
        }
        if (live > options_.edmCapacity) {
            std::ostringstream os;
            os << live << " live keys exceed the " <<
                options_.edmCapacity << "-slot EDM";
            emit(VerifyKind::EdmCapacityExceeded, VerifySeverity::Error,
                 idx, kNoInstIdx, k, os.str());
        }
    }

    void
    waitKey(Edk k, std::size_t idx)
    {
        KeyState &ks = keys_[k];
        if (ks.s == KeyState::Undefined) {
            emit(VerifyKind::WaitOnDeadKey, VerifySeverity::Error, idx,
                 kNoInstIdx, k,
                 keyMsg(k, "waited on but never defined"));
            return;
        }
        ks.s = KeyState::Resolved;
        ks.chain = 0;
    }

    void
    resolveAll()
    {
        for (int k = 1; k < kNumEdks; ++k) {
            KeyState &ks = keys_[k];
            if (ks.s != KeyState::Undefined) {
                ks.s = KeyState::Resolved;
                ks.chain = 0;
            }
        }
    }

    VerifyOptions options_;
    std::array<KeyState, kNumEdks> keys_{};
    VerifyReport report_;
};

} // namespace

VerifyReport
verifyProgram(const std::vector<StaticInst> &program,
              const VerifyOptions &options)
{
    Verifier v(options);
    for (std::size_t i = 0; i < program.size(); ++i)
        v.step(program[i], i);
    return v.finish(program.size());
}

VerifyReport
verifyTrace(const Trace &trace, const VerifyOptions &options)
{
    Verifier v(options);
    for (std::size_t i = 0; i < trace.size(); ++i)
        v.step(trace[i].si, i);
    return v.finish(trace.size());
}

} // namespace ede
