/**
 * @file
 * Static EDK dataflow verifier.
 *
 * A linear def-use analysis over the 16 execution-dependence keys of
 * an assembled program or trace.  It tracks, per key, whether the key
 * is undefined, pending (defined but not yet ordered against), or
 * resolved, plus the transitive set of keys each pending definition
 * depends on, and rejects programs that break the EDE contract:
 *
 *  - key fields outside the 4-bit encoding, or on opcodes without an
 *    EDE variant;
 *  - consumers (STR/STP/LDR/DC CVAP use operands, JOIN merges) naming
 *    a key no producer ever defined;
 *  - WAIT_KEY on a dead key;
 *  - redefining a key whose previous definition nothing consumed --
 *    the EDM overwrite silently drops the old dependence;
 *  - cycles in the key dependence graph (including self-loops and
 *    chains built through JOIN merges);
 *  - more live definitions than the modelled EDM holds slots for.
 *
 * DSB SY and WAIT_ALL_KEYS resolve every live key (all older
 * instructions complete before anything younger runs); WAIT_KEY
 * resolves the key it names.  The analysis is over the *static*
 * program order, which for our straight-line traces equals dynamic
 * order; mispredicted-path wrong-way instructions are squashed and
 * never change architectural EDM state, so the verdict carries over.
 */

#ifndef EDE_VERIFY_VERIFIER_HH
#define EDE_VERIFY_VERIFIER_HH

#include <cstddef>
#include <vector>

#include "isa/inst.hh"
#include "trace/trace.hh"
#include "verify/diagnostics.hh"

namespace ede {

/** Verifier knobs. */
struct VerifyOptions
{
    /**
     * Modelled EDM capacity in live keys.  The paper's map has one
     * slot per real key, so the architectural limit of 15 can never
     * be hit; smaller values model a reduced physical map and make
     * EdmCapacityExceeded reachable.
     */
    std::size_t edmCapacity = kNumEdks - 1;

    /** Emit UnconsumedDef warnings for defs still pending at end. */
    bool warnUnconsumed = true;
};

/** Verify a static instruction sequence. */
VerifyReport verifyProgram(const std::vector<StaticInst> &program,
                           const VerifyOptions &options = {});

/** Verify the static parts of a dynamic trace. */
VerifyReport verifyTrace(const Trace &trace,
                         const VerifyOptions &options = {});

} // namespace ede

#endif // EDE_VERIFY_VERIFIER_HH
