/**
 * @file
 * Shared helpers for pipeline-level tests: a small core+hierarchy
 * bundle with completion recording enabled.
 */

#ifndef EDE_TESTS_SIM_TEST_UTIL_HH
#define EDE_TESTS_SIM_TEST_UTIL_HH

#include "mem/mem_system.hh"
#include "pipeline/core.hh"
#include "trace/builder.hh"

namespace ede {

/** A core + memory hierarchy with Table I defaults. */
struct MiniSim
{
    explicit MiniSim(EnforceMode mode = EnforceMode::None,
                     CoreParams overrides = CoreParams{},
                     MemSystemParams mem_overrides = MemSystemParams{})
        : params(overrides)
    {
        params.ede = mode;
        mem = std::make_unique<MemSystem>(mem_overrides);
        core = std::make_unique<OoOCore>(params, *mem);
        core->setTimingImage(&image);
        core->setRecordCompletions(true);
    }

    Cycle
    run(const Trace &trace)
    {
        return core->run(trace);
    }

    /** Completion cycle of trace element @p idx. */
    Cycle
    done(std::size_t idx) const
    {
        return core->completionCycles().at(idx);
    }

    /** A DRAM address on its own cache line. */
    static Addr
    dramLine(int i)
    {
        return 0x100000 + static_cast<Addr>(i) * 64;
    }

    /** An NVM address on its own cache line. */
    Addr
    nvmLine(int i) const
    {
        return mem->params().map.nvmBase() + 0x10000 +
               static_cast<Addr>(i) * 64;
    }

    CoreParams params;
    std::unique_ptr<MemSystem> mem;
    std::unique_ptr<OoOCore> core;
    MemoryImage image;
};

} // namespace ede

#endif // EDE_TESTS_SIM_TEST_UTIL_HH
