/**
 * @file
 * Shared helpers for pipeline-level tests: a Session-backed
 * core+hierarchy bundle with completion recording enabled.
 *
 * MiniSim keeps its historical member names (`core`, `mem`, `image`)
 * as views into the Session's System so the pipeline tests read the
 * same as always while construction flows through the validated
 * SimConfig front end.
 */

#ifndef EDE_TESTS_SIM_TEST_UTIL_HH
#define EDE_TESTS_SIM_TEST_UTIL_HH

#include "sim/session.hh"
#include "trace/builder.hh"

namespace ede {

/** A core + memory hierarchy with Table I defaults. */
struct MiniSim
{
    explicit MiniSim(EnforceMode mode = EnforceMode::None,
                     CoreParams overrides = CoreParams{},
                     MemSystemParams mem_overrides = MemSystemParams{})
        : session(makeConfig(mode, overrides, mem_overrides)),
          params(session.config().core()),
          mem(&session.system().mem()),
          core(&session.system().core()),
          image(session.system().timingImage())
    {
        session.system().recordCompletions(true);
    }

    /** Map an enforcement mode onto its Table III configuration. */
    static SimConfig
    makeConfig(EnforceMode mode, CoreParams overrides,
               const MemSystemParams &mem_overrides)
    {
        overrides.ede = mode;
        const Config cfg = mode == EnforceMode::IQ   ? Config::IQ
                           : mode == EnforceMode::WB ? Config::WB
                                                     : Config::B;
        return SimConfig::paper(cfg).withCore(overrides).withMem(
            mem_overrides);
    }

    Cycle
    run(const Trace &trace)
    {
        result = session.run(RunRequest::of(trace));
        return result.cycles();
    }

    /** Completion cycle of trace element @p idx. */
    Cycle
    done(std::size_t idx) const
    {
        return core->completionCycles().at(idx);
    }

    /** A DRAM address on its own cache line. */
    static Addr
    dramLine(int i)
    {
        return 0x100000 + static_cast<Addr>(i) * 64;
    }

    /** An NVM address on its own cache line. */
    Addr
    nvmLine(int i) const
    {
        return mem->params().map.nvmBase() + 0x10000 +
               static_cast<Addr>(i) * 64;
    }

    Session session;
    CoreParams params;
    MemSystem *mem;     ///< The session system's hierarchy.
    OoOCore *core;      ///< The session system's core.
    MemoryImage &image; ///< The session system's timing image.
    SimResult result;   ///< Filled by run().
};

} // namespace ede

#endif // EDE_TESTS_SIM_TEST_UTIL_HH
