/**
 * @file
 * Functional tests for the Table II applications: each workload's
 * data structure must be correct on the volatile image after
 * generation, independent of any timing simulation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "apps/btree.hh"
#include "apps/ctree.hh"
#include "apps/harness.hh"
#include "apps/rbtree.hh"

namespace ede {
namespace {

class AppFunctionalTest : public ::testing::TestWithParam<AppId>
{
};

TEST_P(AppFunctionalTest, FinalStateMatchesReference)
{
    RunSpec spec;
    spec.txns = 6;
    spec.opsPerTxn = 8;
    WorkloadHarness h(GetParam(), Config::B, spec);
    h.generate();
    EXPECT_TRUE(h.app().checkFinal());
    EXPECT_GT(h.trace().size(), 0u);
}

TEST_P(AppFunctionalTest, GenerationIsDeterministic)
{
    RunSpec spec;
    spec.txns = 3;
    spec.opsPerTxn = 5;
    WorkloadHarness h1(GetParam(), Config::WB, spec);
    WorkloadHarness h2(GetParam(), Config::WB, spec);
    h1.generate();
    h2.generate();
    ASSERT_EQ(h1.trace().size(), h2.trace().size());
    for (std::size_t i = 0; i < h1.trace().size(); ++i) {
        EXPECT_EQ(h1.trace()[i].addr, h2.trace()[i].addr);
        EXPECT_EQ(h1.trace()[i].op(), h2.trace()[i].op());
    }
}

TEST_P(AppFunctionalTest, ConfigsSeeSameOperationStream)
{
    // The same seed produces the same *semantic* work under every
    // configuration; only the ordering instructions differ.
    RunSpec spec;
    spec.txns = 3;
    spec.opsPerTxn = 5;
    WorkloadHarness hb(GetParam(), Config::B, spec);
    WorkloadHarness hu(GetParam(), Config::U, spec);
    hb.generate();
    hu.generate();
    EXPECT_EQ(hb.trace().opCount(Op::Stp), hu.trace().opCount(Op::Stp));
    EXPECT_EQ(hb.trace().opCount(Op::Str), hu.trace().opCount(Op::Str));
    EXPECT_GT(hb.trace().fenceCount(), 1u);
    // U carries no ordering beyond the shared setup-closing fence.
    EXPECT_LE(hu.trace().fenceCount(), 1u);
    EXPECT_TRUE(hb.app().checkFinal());
    EXPECT_TRUE(hu.app().checkFinal());
}

TEST_P(AppFunctionalTest, RecoveredCheckAcceptsEveryTxnBoundary)
{
    // Sanity for the checker itself: the *final* functional image
    // must be accepted as the last boundary state.
    RunSpec spec;
    spec.txns = 4;
    spec.opsPerTxn = 6;
    WorkloadHarness h(GetParam(), Config::B, spec);
    h.generate();
    EXPECT_TRUE(h.app().checkRecovered(h.system().volatileImage()));
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppFunctionalTest, ::testing::ValuesIn(kAllApps),
    [](const auto &info) {
        return std::string(appName(info.param));
    });

TEST(BtreeUnit, InsertAndLookupThousandKeys)
{
    RunSpec spec;
    WorkloadHarness h(AppId::Btree, Config::U, spec);
    auto &fw = h.framework();
    auto *btree = dynamic_cast<BtreeApp *>(&h.app());
    ASSERT_NE(btree, nullptr);
    btree->setup();
    std::map<std::uint64_t, std::uint64_t> ref;
    Rng rng(99);
    for (int chunk = 0; chunk < 20; ++chunk) {
        fw.txBegin();
        for (int i = 0; i < 50; ++i) {
            const std::uint64_t k = rng.below(100000);
            const std::uint64_t v = rng.next() | 1;
            btree->insert(k, v);
            ref[k] = v;
        }
        fw.txCommit();
    }
    // Every inserted key is found with its latest value.
    const Addr root_ptr = fw.heap().base(); // First allocation.
    for (const auto &[k, v] : ref) {
        std::uint64_t got = 0;
        EXPECT_TRUE(BtreeApp::lookup(fw.image(), root_ptr, k, &got));
        EXPECT_EQ(got, v);
    }
    // Absent keys are not found.
    EXPECT_FALSE(BtreeApp::lookup(fw.image(), root_ptr, 100001, nullptr));
}

TEST(CtreeUnit, DuplicateKeysUpdateInPlace)
{
    RunSpec spec;
    WorkloadHarness h(AppId::Ctree, Config::U, spec);
    auto &fw = h.framework();
    auto *ctree = dynamic_cast<CtreeApp *>(&h.app());
    ASSERT_NE(ctree, nullptr);
    ctree->setup();
    fw.txBegin();
    ctree->insert(5, 100);
    ctree->insert(9, 200);
    ctree->insert(5, 300); // Update.
    fw.txCommit();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    ASSERT_TRUE(ctree->contents(fw.image(), got));
    std::map<std::uint64_t, std::uint64_t> m(got.begin(), got.end());
    ASSERT_EQ(m.size(), 2u);
    EXPECT_EQ(m[5], 300u);
    EXPECT_EQ(m[9], 200u);
}

TEST(CtreeUnit, AdversarialBitPatterns)
{
    RunSpec spec;
    WorkloadHarness h(AppId::Ctree, Config::U, spec);
    auto &fw = h.framework();
    auto *ctree = dynamic_cast<CtreeApp *>(&h.app());
    ASSERT_NE(ctree, nullptr);
    ctree->setup();
    fw.txBegin();
    std::map<std::uint64_t, std::uint64_t> ref;
    // Keys differing in MSB, LSB and shared prefixes.
    const std::uint64_t keys[] = {
        0, 1, 2, 3, 1ull << 63, (1ull << 63) | 1, 0xffffffffffffffffull,
        0x8000000000000001ull, 42, 43, 0xff00ff00ff00ff00ull,
    };
    std::uint64_t v = 1;
    for (std::uint64_t k : keys) {
        ctree->insert(k, v);
        ref[k] = v++;
    }
    fw.txCommit();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    ASSERT_TRUE(ctree->contents(fw.image(), got));
    std::map<std::uint64_t, std::uint64_t> m(got.begin(), got.end());
    EXPECT_EQ(m, ref);
}

TEST(RbtreeUnit, SortedInsertionKeepsInvariants)
{
    RunSpec spec;
    WorkloadHarness h(AppId::Rbtree, Config::U, spec);
    auto &fw = h.framework();
    auto *rb = dynamic_cast<RbtreeApp *>(&h.app());
    ASSERT_NE(rb, nullptr);
    rb->setup();
    // Monotone insertion is the classic rotation stress.
    for (std::uint64_t k = 1; k <= 300; ++k) {
        if (k % 50 == 1)
            fw.txBegin();
        rb->insert(k, k * 2);
        if (k % 50 == 0)
            fw.txCommit();
    }
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    ASSERT_TRUE(rb->contents(fw.image(), got));
    ASSERT_EQ(got.size(), 300u);
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].first, i + 1);
        EXPECT_EQ(got[i].second, 2 * (i + 1));
    }
}

TEST(RbtreeUnit, ReverseAndRandomInsertionKeepInvariants)
{
    RunSpec spec;
    WorkloadHarness h(AppId::Rbtree, Config::U, spec);
    auto &fw = h.framework();
    auto *rb = dynamic_cast<RbtreeApp *>(&h.app());
    ASSERT_NE(rb, nullptr);
    rb->setup();
    for (std::uint64_t k = 600; k > 300; --k) {
        if (k % 50 == 0)
            fw.txBegin();
        rb->insert(k, k);
        if (k % 50 == 1)
            fw.txCommit();
    }
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        if (i % 50 == 0)
            fw.txBegin();
        rb->insert(1000 + rng.below(100000), i + 1);
        if (i % 50 == 49)
            fw.txCommit();
    }
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    EXPECT_TRUE(rb->contents(fw.image(), got));
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

} // namespace
} // namespace ede
