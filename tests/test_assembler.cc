/**
 * @file
 * Assembler tests: the paper's syntax round-trips through
 * assembleLine -> disassemble, and malformed input is rejected with
 * a useful message.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/encoding.hh"

namespace ede {
namespace {

StaticInst
mustAssemble(std::string_view line)
{
    const AsmResult r = assembleLine(line);
    EXPECT_TRUE(r.ok) << line << ": " << r.error;
    return r.inst;
}

TEST(Assembler, PlainLoadStore)
{
    const StaticInst ld = mustAssemble("ldr x1, [x0]");
    EXPECT_EQ(ld.op, Op::Ldr);
    EXPECT_EQ(ld.dst, 1);
    EXPECT_EQ(ld.base, 0);
    EXPECT_EQ(ld.size, 8);

    const StaticInst st = mustAssemble("str x3, [x0, #8]");
    EXPECT_EQ(st.op, Op::Str);
    EXPECT_EQ(st.src1, 3);
    EXPECT_EQ(st.base, 0);
    EXPECT_EQ(st.imm, 8);
}

TEST(Assembler, Figure7EdeVariants)
{
    // The exact lines from Figure 7.
    const StaticInst cvap = mustAssemble("dc cvap (1,0), x2");
    EXPECT_EQ(cvap.op, Op::DcCvap);
    EXPECT_EQ(cvap.edkDef, 1);
    EXPECT_EQ(cvap.edkUse, 0);
    EXPECT_EQ(cvap.base, 2);

    const StaticInst st = mustAssemble("str (0,1), x3, [x0]");
    EXPECT_EQ(st.op, Op::Str);
    EXPECT_EQ(st.edkDef, 0);
    EXPECT_EQ(st.edkUse, 1);
    EXPECT_EQ(st.src1, 3);
}

TEST(Assembler, EdeLoadVariant)
{
    const StaticInst ld = mustAssemble("ldr (0,1), x4, [x1]");
    EXPECT_EQ(ld.op, Op::Ldr);
    EXPECT_EQ(ld.edkUse, 1);
    EXPECT_EQ(ld.dst, 4);
}

TEST(Assembler, StorePair)
{
    const StaticInst stp = mustAssemble("stp x0, x1, [x2]");
    EXPECT_EQ(stp.op, Op::Stp);
    EXPECT_EQ(stp.src1, 0);
    EXPECT_EQ(stp.src2, 1);
    EXPECT_EQ(stp.base, 2);
    EXPECT_EQ(stp.size, 16);
}

TEST(Assembler, Barriers)
{
    EXPECT_EQ(mustAssemble("dsb sy").op, Op::DsbSy);
    EXPECT_EQ(mustAssemble("dmb st").op, Op::DmbSt);
}

TEST(Assembler, ControlInstructions)
{
    const StaticInst join = mustAssemble("join (3,1,2)");
    EXPECT_EQ(join.op, Op::Join);
    EXPECT_EQ(join.edkDef, 3);
    EXPECT_EQ(join.edkUse, 1);
    EXPECT_EQ(join.edkUse2, 2);

    const StaticInst wk = mustAssemble("wait_key (4)");
    EXPECT_EQ(wk.op, Op::WaitKey);
    EXPECT_EQ(wk.edkDef, 4);
    EXPECT_EQ(wk.edkUse, 4);

    EXPECT_EQ(mustAssemble("wait_all_keys").op, Op::WaitAllKeys);
}

TEST(Assembler, AluForms)
{
    const StaticInst add = mustAssemble("add x1, x2, x3");
    EXPECT_EQ(add.op, Op::IntAlu);
    EXPECT_EQ(add.dst, 1);
    EXPECT_EQ(add.src2, 3);

    const StaticInst addi = mustAssemble("add x1, x2, #4");
    EXPECT_EQ(addi.imm, 4);
    EXPECT_EQ(addi.src2, kNoReg);

    const StaticInst cmp = mustAssemble("cmp x1, x2");
    EXPECT_EQ(cmp.op, Op::IntAlu);
    EXPECT_EQ(cmp.dst, kNoReg);

    const StaticInst mul = mustAssemble("mul x1, x2, x3");
    EXPECT_EQ(mul.op, Op::IntMult);
}

TEST(Assembler, MovAndBranches)
{
    const StaticInst mov = mustAssemble("mov x3, #42");
    EXPECT_EQ(mov.op, Op::Mov);
    EXPECT_EQ(mov.imm, 42);

    const StaticInst movr = mustAssemble("mov x3, x4");
    EXPECT_EQ(movr.src1, 4);

    EXPECT_EQ(mustAssemble("b #16").op, Op::Branch);
    const StaticInst bne = mustAssemble("b.ne x4, x3, #-8");
    EXPECT_EQ(bne.op, Op::BranchCond);
    EXPECT_EQ(bne.imm, -8);
}

TEST(Assembler, ZeroRegisterAndComments)
{
    const StaticInst mov = mustAssemble("mov x1, xzr ; copy zero");
    EXPECT_EQ(mov.src1, kZeroReg);
}

TEST(Assembler, RejectsMalformedInput)
{
    EXPECT_FALSE(assembleLine("frobnicate x1").ok);
    EXPECT_FALSE(assembleLine("ldr x1").ok);
    EXPECT_FALSE(assembleLine("ldr x99, [x0]").ok);
    EXPECT_FALSE(assembleLine("str (0,99), x1, [x0]").ok);
    EXPECT_FALSE(assembleLine("dc cvap x1 x2").ok);
    EXPECT_FALSE(assembleLine("wait_key (0)").ok);
    EXPECT_FALSE(assembleLine("join (1,2)").ok);
    EXPECT_FALSE(assembleLine("").ok);
}

TEST(Assembler, RoundTripsThroughDisassembler)
{
    const char *lines[] = {
        "ldr x1, [x0]",
        "str (0,1), x3, [x0]",
        "stp x0, x1, [x2]",
        "dc cvap (1,0), x2",
        "dsb sy",
        "dmb st",
        "join (3,1,2)",
        "wait_key (4)",
        "wait_all_keys",
        "nop",
    };
    for (const char *line : lines) {
        const StaticInst first = mustAssemble(line);
        const std::string printed = disassemble(first);
        const StaticInst second = mustAssemble(printed);
        EXPECT_EQ(first, second) << line << " -> " << printed;
    }
}

/** Assemble -> disassemble -> assemble must be a fixed point. */
void
expectRoundTrip(const std::string &line)
{
    const StaticInst first = mustAssemble(line);
    const std::string printed = disassemble(first);
    const StaticInst second = mustAssemble(printed);
    EXPECT_EQ(first, second) << line << " -> " << printed;
}

TEST(Assembler, EdkVariantRoundTripMatrix)
{
    // Every EDK-carrying instruction form, across the full (def,use)
    // encoding space, survives assemble -> disassemble -> assemble.
    for (int def = 0; def < kNumEdks; ++def) {
        for (int use = 0; use < kNumEdks; ++use) {
            const std::string keys =
                "(" + std::to_string(def) + "," +
                std::to_string(use) + ")";
            expectRoundTrip("str " + keys + ", x3, [x0]");
            expectRoundTrip("str " + keys + ", x3, [x0, #24]");
            expectRoundTrip("stp " + keys + ", x4, x5, [x2]");
            expectRoundTrip("ldr " + keys + ", x6, [x1]");
            expectRoundTrip("dc cvap " + keys + ", x2");
        }
    }
    // JOIN carries a third key; sample the diagonal planes.
    for (int k = 0; k < kNumEdks; ++k) {
        expectRoundTrip("join (" + std::to_string(k) + ",1,2)");
        expectRoundTrip("join (3," + std::to_string(k) + ",2)");
        expectRoundTrip("join (3,1," + std::to_string(k) + ")");
    }
    for (int k = 1; k < kNumEdks; ++k)
        expectRoundTrip("wait_key (" + std::to_string(k) + ")");
    expectRoundTrip("wait_all_keys");
}

TEST(Assembler, RejectsOutOfRangeKeys)
{
    // 16 is the first value outside the 4-bit key encoding.
    for (const char *bad : {"16", "17", "31", "99", "255"}) {
        const std::string k(bad);
        EXPECT_FALSE(assembleLine("str (0," + k + "), x3, [x0]").ok)
            << k;
        EXPECT_FALSE(assembleLine("str (" + k + ",0), x3, [x0]").ok)
            << k;
        EXPECT_FALSE(assembleLine("stp (" + k + ",0), x4, x5, [x2]").ok)
            << k;
        EXPECT_FALSE(assembleLine("ldr (0," + k + "), x6, [x1]").ok)
            << k;
        EXPECT_FALSE(assembleLine("dc cvap (" + k + ",0), x2").ok)
            << k;
        EXPECT_FALSE(assembleLine("join (" + k + ",1,2)").ok) << k;
        EXPECT_FALSE(assembleLine("join (1," + k + ",2)").ok) << k;
        EXPECT_FALSE(assembleLine("join (1,2," + k + ")").ok) << k;
        EXPECT_FALSE(assembleLine("wait_key (" + k + ")").ok) << k;
    }
    // The zero key means "unused" and cannot be waited on.
    EXPECT_FALSE(assembleLine("wait_key (0)").ok);
}

TEST(Assembler, RoundTripsThroughEncoder)
{
    const StaticInst si = mustAssemble("str (0,1), x3, [x0]");
    const auto word = encode(si);
    ASSERT_TRUE(word.has_value());
    const auto back = decode(*word);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->edkUse, 1);
    EXPECT_EQ(back->src1, 3);
}

TEST(Assembler, MultiLineListing)
{
    const char *listing = R"(
        ; Figure 7: log persist then ordered element update
        dc cvap (1,0), x2
        dsb sy          ; only in the baseline
        str (0,1), x3, [x0]
    )";
    std::string err;
    const auto program = assemble(listing, &err);
    ASSERT_TRUE(program.has_value()) << err;
    ASSERT_EQ(program->size(), 3u);
    EXPECT_EQ((*program)[0].op, Op::DcCvap);
    EXPECT_EQ((*program)[1].op, Op::DsbSy);
    EXPECT_EQ((*program)[2].op, Op::Str);
}

TEST(Assembler, ListingErrorsCarryLineNumbers)
{
    std::string err;
    const auto program = assemble("nop\nbogus x1\n", &err);
    EXPECT_FALSE(program.has_value());
    EXPECT_NE(err.find("line 2"), std::string::npos);
}

} // namespace
} // namespace ede
