/**
 * @file
 * Unit tests for the crash-consistency auditor: ordering checks over
 * completion cycles and byte-accurate crash image reconstruction.
 */

#include <gtest/gtest.h>

#include "audit/auditor.hh"

namespace ede {
namespace {

PersistObligation
ob(std::size_t log_idx, std::size_t str_idx)
{
    PersistObligation o;
    o.logCvapIdx = log_idx;
    o.dataStrIdx = str_idx;
    o.dataCvapIdx = str_idx + 1;
    return o;
}

TEST(Auditor, EmptyObligationsAreClean)
{
    const AuditReport r = auditPersistOrdering({}, {});
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.checked, 0u);
}

TEST(Auditor, OrderedObligationPasses)
{
    // log persisted @10, store visible @20.
    const std::vector<Cycle> completions = {10, 20, 25};
    const AuditReport r = auditPersistOrdering({ob(0, 1)},
                                               completions);
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.checked, 1u);
}

TEST(Auditor, SameCycleIsNotAViolation)
{
    const std::vector<Cycle> completions = {10, 10, 15};
    EXPECT_TRUE(auditPersistOrdering({ob(0, 1)}, completions).clean());
}

TEST(Auditor, InvertedObligationIsFlagged)
{
    // Store visible @5, log persisted @10: data could be durable
    // without its undo entry.
    const std::vector<Cycle> completions = {10, 5, 15};
    const AuditReport r = auditPersistOrdering({ob(0, 1)},
                                               completions);
    EXPECT_FALSE(r.clean());
    EXPECT_EQ(r.violations, 1u);
    EXPECT_EQ(r.firstViolationOp, 0u);
}

TEST(Auditor, CountsEveryViolation)
{
    const std::vector<Cycle> completions = {10, 5, 15, 30, 20, 35};
    const AuditReport r = auditPersistOrdering(
        {ob(0, 1), ob(3, 4)}, completions);
    EXPECT_EQ(r.checked, 2u);
    EXPECT_EQ(r.violations, 2u);
    EXPECT_EQ(r.firstViolationOp, 0u);
}

PersistEvent
event(Addr addr, Cycle cycle, std::uint64_t payload)
{
    PersistEvent ev;
    ev.addr = addr;
    ev.size = 8;
    ev.cycle = cycle;
    ev.bytes.resize(8);
    std::memcpy(ev.bytes.data(), &payload, 8);
    return ev;
}

TEST(CrashImage, EmptyBeforeFirstEvent)
{
    const std::vector<PersistEvent> events = {event(0x100, 50, 7)};
    const MemoryImage img = buildCrashImage(events, 49);
    EXPECT_EQ(img.read<std::uint64_t>(0x100), 0u);
}

TEST(CrashImage, IncludesEventsUpToCrashCycle)
{
    const std::vector<PersistEvent> events = {
        event(0x100, 10, 1),
        event(0x200, 20, 2),
        event(0x300, 30, 3),
    };
    const MemoryImage img = buildCrashImage(events, 20);
    EXPECT_EQ(img.read<std::uint64_t>(0x100), 1u);
    EXPECT_EQ(img.read<std::uint64_t>(0x200), 2u);
    EXPECT_EQ(img.read<std::uint64_t>(0x300), 0u);
}

TEST(CrashImage, LaterEventsOverwrite)
{
    const std::vector<PersistEvent> events = {
        event(0x100, 10, 1),
        event(0x100, 20, 2),
    };
    EXPECT_EQ(buildCrashImage(events, 15).read<std::uint64_t>(0x100),
              1u);
    EXPECT_EQ(buildCrashImage(events, 25).read<std::uint64_t>(0x100),
              2u);
}

TEST(CrashImage, AppliesOnTopOfBaseline)
{
    MemoryImage base;
    base.write<std::uint64_t>(0x100, 42);
    base.write<std::uint64_t>(0x108, 43);
    applyPersistEvents(base, {event(0x100, 10, 7)}, 10);
    EXPECT_EQ(base.read<std::uint64_t>(0x100), 7u);
    EXPECT_EQ(base.read<std::uint64_t>(0x108), 43u); // Untouched.
}

TEST(CrashImageDeath, EventsWithoutDataAreRejected)
{
    PersistEvent ev;
    ev.addr = 0x100;
    ev.size = 8;
    ev.cycle = 1;
    EXPECT_DEATH(buildCrashImage({ev}, 10), "without data");
}

} // namespace
} // namespace ede
