/**
 * @file
 * Unit tests for one cache level, driven against a scripted backing
 * sink.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "mem/cache.hh"

namespace ede {
namespace {

/** Records everything sent below; fills are injected manually. */
class FakeBelow : public MemSink
{
  public:
    bool
    tryAccept(const MemReq &req, Cycle) override
    {
        if (!acceptAll)
            return false;
        reqs.push_back(req);
        return true;
    }

    std::size_t
    countKind(ReqKind k) const
    {
        std::size_t n = 0;
        for (const auto &r : reqs)
            n += (r.kind == k) ? 1 : 0;
        return n;
    }

    std::vector<MemReq> reqs;
    bool acceptAll = true;
};

struct CacheFixture : ::testing::Test
{
    CacheFixture()
    {
        CacheParams p;
        p.name = "l1-test";
        p.sizeBytes = 1024; // 4 sets x 4 ways x 64 B.
        p.assoc = 4;
        p.lineBytes = 64;
        p.latency = 2;
        p.ports = 2;
        p.mshrs = 2;
        p.inputQueue = 4;
        cache = std::make_unique<Cache>(p, &below);
        cache->setRespFn([this](const MemResp &r, Cycle) {
            resps.push_back(r);
        });
    }

    void
    step(int n = 1)
    {
        for (int i = 0; i < n; ++i)
            cache->tick(now++);
    }

    /** Respond to the most recent fill request from below. */
    void
    fillLast()
    {
        ASSERT_FALSE(below.reqs.empty());
        const MemReq &fill = below.reqs.back();
        ASSERT_EQ(fill.kind, ReqKind::Read);
        cache->handleResp(MemResp{fill.id, ReqKind::Read, fill.addr},
                          now);
    }

    FakeBelow below;
    std::unique_ptr<Cache> cache;
    std::vector<MemResp> resps;
    Cycle now = 0;
};

TEST_F(CacheFixture, MissSendsLineFillBelow)
{
    ASSERT_TRUE(cache->tryAccept(MemReq{1, ReqKind::Read, 0x1008, 8},
                                 now));
    step(2);
    ASSERT_EQ(below.reqs.size(), 1u);
    EXPECT_EQ(below.reqs[0].kind, ReqKind::Read);
    EXPECT_EQ(below.reqs[0].addr, 0x1000u); // Line aligned.
    EXPECT_EQ(below.reqs[0].id, kNoReq);    // Fill, not the demand id.
    EXPECT_TRUE(resps.empty());
}

TEST_F(CacheFixture, FillCompletesWaitersAndInstallsLine)
{
    cache->tryAccept(MemReq{1, ReqKind::Read, 0x1008, 8}, now);
    step(2);
    fillLast();
    step(4);
    ASSERT_EQ(resps.size(), 1u);
    EXPECT_EQ(resps[0].id, 1u);
    EXPECT_TRUE(cache->probe(0x1008));
    EXPECT_FALSE(cache->probeDirty(0x1008));
    EXPECT_EQ(cache->stats().misses, 1u);
}

TEST_F(CacheFixture, HitRespondsWithoutGoingBelow)
{
    cache->tryAccept(MemReq{1, ReqKind::Read, 0x1000, 8}, now);
    step(2);
    fillLast();
    step(4);
    resps.clear();
    const auto below_count = below.reqs.size();
    cache->tryAccept(MemReq{2, ReqKind::Read, 0x1010, 8}, now);
    step(4);
    ASSERT_EQ(resps.size(), 1u);
    EXPECT_EQ(resps[0].id, 2u);
    EXPECT_EQ(below.reqs.size(), below_count);
    EXPECT_EQ(cache->stats().hits, 1u);
}

TEST_F(CacheFixture, WriteMissFillsThenDirties)
{
    cache->tryAccept(MemReq{1, ReqKind::Write, 0x2000, 8}, now);
    step(2);
    fillLast();
    step(4);
    ASSERT_EQ(resps.size(), 1u);
    EXPECT_TRUE(cache->probeDirty(0x2000));
}

TEST_F(CacheFixture, MshrMergesSameLineRequests)
{
    cache->tryAccept(MemReq{1, ReqKind::Read, 0x3000, 8}, now);
    cache->tryAccept(MemReq{2, ReqKind::Read, 0x3008, 8}, now);
    step(2);
    EXPECT_EQ(below.reqs.size(), 1u); // One fill for both.
    EXPECT_EQ(cache->stats().mshrMerges, 1u);
    fillLast();
    step(4);
    EXPECT_EQ(resps.size(), 2u);
}

TEST_F(CacheFixture, DirtyEvictionWritesBack)
{
    // Addresses 0x0, 0x1000, 0x2000, ... map to set 0 (4 sets).
    for (int i = 0; i < 5; ++i) {
        cache->tryAccept(MemReq{static_cast<ReqId>(i + 1),
                                ReqKind::Write,
                                static_cast<Addr>(i) * 0x1000, 8},
                         now);
        step(2);
        fillLast();
        step(4);
    }
    // The fifth write evicted the LRU (first) dirty line.
    EXPECT_EQ(below.countKind(ReqKind::Writeback), 1u);
    EXPECT_EQ(below.reqs.back().addr, 0x0u);
    EXPECT_FALSE(cache->probe(0x0));
    EXPECT_EQ(cache->stats().evictions, 1u);
    EXPECT_EQ(cache->stats().writebacks, 1u);
}

TEST_F(CacheFixture, LruVictimIsLeastRecentlyUsed)
{
    for (int i = 0; i < 4; ++i) {
        cache->tryAccept(MemReq{static_cast<ReqId>(i + 1),
                                ReqKind::Read,
                                static_cast<Addr>(i) * 0x1000, 8},
                         now);
        step(2);
        fillLast();
        step(4);
    }
    // Touch line 0 so line 1 becomes LRU.
    cache->tryAccept(MemReq{10, ReqKind::Read, 0x0, 8}, now);
    step(4);
    cache->tryAccept(MemReq{11, ReqKind::Read, 0x4000, 8}, now);
    step(2);
    fillLast();
    step(4);
    EXPECT_TRUE(cache->probe(0x0));
    EXPECT_FALSE(cache->probe(0x1000));
}

TEST_F(CacheFixture, CleanClearsDirtyAndForwards)
{
    cache->tryAccept(MemReq{1, ReqKind::Write, 0x2000, 8}, now);
    step(2);
    fillLast();
    step(4);
    ASSERT_TRUE(cache->probeDirty(0x2000));

    cache->tryAccept(MemReq{2, ReqKind::Clean, 0x2008, 8}, now);
    step(2);
    EXPECT_FALSE(cache->probeDirty(0x2000));
    EXPECT_TRUE(cache->probe(0x2000)); // Still resident (clean).
    ASSERT_EQ(below.countKind(ReqKind::Clean), 1u);
    EXPECT_EQ(below.reqs.back().addr, 0x2000u); // Line aligned.

    // Persist ack flows straight back up.
    resps.clear();
    cache->handleResp(MemResp{2, ReqKind::Clean, 0x2000}, now);
    ASSERT_EQ(resps.size(), 1u);
    EXPECT_EQ(resps[0].kind, ReqKind::Clean);
    EXPECT_EQ(resps[0].id, 2u);
}

TEST_F(CacheFixture, CleanMissStillReachesPersistencePoint)
{
    cache->tryAccept(MemReq{5, ReqKind::Clean, 0x7000, 8}, now);
    step(2);
    EXPECT_EQ(below.countKind(ReqKind::Clean), 1u);
}

TEST_F(CacheFixture, WritebackFromAboveAllocatesDirtyWithoutFill)
{
    cache->tryAccept(MemReq{kNoReq, ReqKind::Writeback, 0x5000, 64},
                     now);
    step(2);
    EXPECT_TRUE(cache->probeDirty(0x5000));
    EXPECT_TRUE(below.reqs.empty()); // No fill needed.
}

TEST_F(CacheFixture, InputQueueExertsBackpressure)
{
    below.acceptAll = false; // Keep requests stuck.
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(cache->tryAccept(
            MemReq{static_cast<ReqId>(i + 1), ReqKind::Read,
                   static_cast<Addr>(i) * 0x40, 8}, now));
    }
    EXPECT_FALSE(cache->tryAccept(MemReq{9, ReqKind::Read, 0x900, 8},
                                  now));
    EXPECT_GT(cache->stats().rejects, 0u);
}

TEST_F(CacheFixture, RetriesWhenBelowRejects)
{
    below.acceptAll = false;
    cache->tryAccept(MemReq{1, ReqKind::Read, 0x1000, 8}, now);
    step(3);
    EXPECT_TRUE(below.reqs.empty());
    below.acceptAll = true;
    step(2);
    EXPECT_EQ(below.reqs.size(), 1u); // Retried fill.
}

TEST_F(CacheFixture, MshrExhaustionStallsHeadOfQueue)
{
    // Two MSHRs; three distinct-line misses.
    cache->tryAccept(MemReq{1, ReqKind::Read, 0x1000, 8}, now);
    cache->tryAccept(MemReq{2, ReqKind::Read, 0x2000, 8}, now);
    cache->tryAccept(MemReq{3, ReqKind::Read, 0x3000, 8}, now);
    step(3);
    EXPECT_EQ(below.reqs.size(), 2u); // Third miss is stalled.
    EXPECT_FALSE(cache->idle());
    fillLast();
    step(3);
    EXPECT_EQ(below.reqs.size(), 3u); // Freed MSHR lets it through.
}

/** Backing store that auto-fills after a fixed delay. */
class AutoBelow : public MemSink
{
  public:
    explicit AutoBelow(Cache *&up) : up_(up) {}

    bool
    tryAccept(const MemReq &req, Cycle now) override
    {
        if (req.kind == ReqKind::Read || req.kind == ReqKind::Clean)
            pending_.push_back({now + 40, req});
        return true;
    }

    void
    tick(Cycle now)
    {
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->first <= now) {
                up_->handleResp(MemResp{it->second.id,
                                        it->second.kind,
                                        it->second.addr}, now);
                it = pending_.erase(it);
            } else {
                ++it;
            }
        }
    }

  private:
    Cache *&up_;
    std::vector<std::pair<Cycle, MemReq>> pending_;
};

class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGeometryTest, RandomTrafficConservesResponses)
{
    const auto [size_kb, assoc] = GetParam();
    CacheParams params;
    params.name = "sweep";
    params.sizeBytes = static_cast<std::uint32_t>(size_kb) * 1024;
    params.assoc = static_cast<std::uint32_t>(assoc);
    params.latency = 2;
    params.mshrs = 4;
    params.inputQueue = 8;

    Cache *up = nullptr;
    AutoBelow below(up);
    Cache cache(params, &below);
    up = &cache;
    std::size_t responses = 0;
    cache.setRespFn([&](const MemResp &r, Cycle) {
        if (r.id != kNoReq)
            ++responses;
    });

    Rng rng(size_kb * 131 + assoc);
    Cycle now = 0;
    std::size_t accepted = 0;
    for (int i = 0; i < 400; ++i) {
        MemReq req;
        req.id = static_cast<ReqId>(i + 1);
        const auto pick = rng.below(10);
        req.kind = pick < 5 ? ReqKind::Read
                   : pick < 8 ? ReqKind::Write : ReqKind::Clean;
        req.addr = 64 * rng.below(256);
        req.size = 8;
        if (cache.tryAccept(req, now))
            ++accepted;
        below.tick(now);
        cache.tick(now);
        ++now;
    }
    for (int i = 0; i < 5000 && !cache.idle(); ++i) {
        below.tick(now);
        cache.tick(now);
        ++now;
    }
    EXPECT_TRUE(cache.idle());
    // Exactly one response per accepted core request.
    EXPECT_EQ(responses, accepted);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Combine(::testing::Values(1, 4, 48),
                       ::testing::Values(1, 2, 4)),
    [](const auto &info) {
        return std::to_string(std::get<0>(info.param)) + "kb_" +
               std::to_string(std::get<1>(info.param)) + "way";
    });

TEST_F(CacheFixture, IdleReflectsOutstandingWork)
{
    EXPECT_TRUE(cache->idle());
    cache->tryAccept(MemReq{1, ReqKind::Read, 0x1000, 8}, now);
    EXPECT_FALSE(cache->idle());
    step(2);
    fillLast();
    step(4);
    EXPECT_TRUE(cache->idle());
}

} // namespace
} // namespace ede
