/**
 * @file
 * Tests for the bench command-line front end: strict value parsing
 * (whole-string integers/doubles, no silent zeroes from garbage),
 * unknown-flag and malformed-value rejection with exit status 2, and
 * the isolation-flag plumbing into exp::RunnerOptions.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../bench/cli.hh"

namespace ede {
namespace {

using bench::Cli;
using bench::CliError;
using bench::IsolationOptions;

/** argv builder for Cli::parse. */
struct Args
{
    explicit Args(std::initializer_list<const char *> words)
        : storage(words.begin(), words.end())
    {
        storage.insert(storage.begin(), "prog");
        for (std::string &w : storage)
            ptrs.push_back(w.data());
    }

    int argc() { return static_cast<int>(ptrs.size()); }
    char **argv() { return ptrs.data(); }

    std::vector<std::string> storage;
    std::vector<char *> ptrs;
};

// ---------------------------------------------------------------- //
// Value conversions
// ---------------------------------------------------------------- //

TEST(CliValues, ParsesWellFormedIntegers)
{
    EXPECT_EQ(bench::toU64("0"), 0u);
    EXPECT_EQ(bench::toU64("42"), 42u);
    EXPECT_EQ(bench::toU64("0x10"), 16u);  // Base prefixes still work.
    EXPECT_EQ(bench::toUnsigned("4294967295"), 4294967295u);
    EXPECT_DOUBLE_EQ(bench::toF64("0.25"), 0.25);
    EXPECT_DOUBLE_EQ(bench::toF64("-1.5"), -1.5);
}

TEST(CliValues, RejectsMalformedIntegers)
{
    EXPECT_THROW(bench::toU64(""), CliError);
    EXPECT_THROW(bench::toU64("abc"), CliError);
    EXPECT_THROW(bench::toU64("12abc"), CliError);
    EXPECT_THROW(bench::toU64("-3"), CliError);
    EXPECT_THROW(bench::toU64("99999999999999999999999"), CliError);
    EXPECT_THROW(bench::toUnsigned("4294967296"), CliError);
}

TEST(CliValues, RejectsMalformedDoubles)
{
    EXPECT_THROW(bench::toF64(""), CliError);
    EXPECT_THROW(bench::toF64("fast"), CliError);
    EXPECT_THROW(bench::toF64("0.5x"), CliError);
}

// ---------------------------------------------------------------- //
// Parse: rejection paths exit 2 with a one-line diagnostic
// ---------------------------------------------------------------- //

Cli
seedCli(std::uint64_t &seed)
{
    Cli cli("testprog");
    cli.value("--seed", "N", "rng seed", [&seed](const std::string &v) {
        seed = bench::toU64(v);
    });
    return cli;
}

using CliDeathTest = ::testing::Test;

TEST(CliDeathTest, UnknownFlagExitsTwo)
{
    std::uint64_t seed = 0;
    Args args({"--sede", "7"});
    EXPECT_EXIT(seedCli(seed).parse(args.argc(), args.argv()),
                ::testing::ExitedWithCode(2), "unknown flag '--sede'");
}

TEST(CliDeathTest, MalformedValueExitsTwoAndNamesTheFlag)
{
    std::uint64_t seed = 0;
    Args args({"--seed", "banana"});
    EXPECT_EXIT(seedCli(seed).parse(args.argc(), args.argv()),
                ::testing::ExitedWithCode(2),
                "flag --seed: expected an unsigned integer, got "
                "'banana'");
}

TEST(CliDeathTest, MissingValueExitsTwo)
{
    std::uint64_t seed = 0;
    Args args({"--seed"});
    EXPECT_EXIT(seedCli(seed).parse(args.argc(), args.argv()),
                ::testing::ExitedWithCode(2),
                "flag --seed needs a value");
}

TEST(CliDeathTest, ZeroAttemptsIsRejected)
{
    IsolationOptions iso;
    Cli cli("testprog");
    bench::addIsolationFlags(cli, iso);
    Args args({"--attempts", "0"});
    EXPECT_EXIT(cli.parse(args.argc(), args.argv()),
                ::testing::ExitedWithCode(2),
                "--attempts must be >= 1");
}

// ---------------------------------------------------------------- //
// Accepting paths
// ---------------------------------------------------------------- //

TEST(Cli, GoodValuesReachTheCallback)
{
    std::uint64_t seed = 0;
    Args args({"--seed", "0x2a"});
    seedCli(seed).parse(args.argc(), args.argv());
    EXPECT_EQ(seed, 42u);
}

TEST(Cli, IsolationFlagsPopulateRunnerOptions)
{
    IsolationOptions iso;
    Cli cli("testprog");
    bench::addIsolationFlags(cli, iso);
    Args args({"--isolate", "--timeout-ms", "1500", "--mem-limit-mb",
               "256", "--attempts", "5", "--journal", "j.log",
               "--resume"});
    cli.parse(args.argc(), args.argv());

    EXPECT_TRUE(iso.isolate);
    EXPECT_EQ(iso.limits.timeoutMs, 1500u);
    EXPECT_EQ(iso.limits.memLimitBytes, 256ull * 1024 * 1024);
    EXPECT_EQ(iso.retry.maxAttempts, 5u);
    EXPECT_EQ(iso.journalPath, "j.log");
    EXPECT_TRUE(iso.resume);

    exp::RunnerOptions ro;
    bench::applyIsolation(ro, iso);
    EXPECT_EQ(ro.isolation, exp::IsolationMode::Process);
    EXPECT_EQ(ro.limits.timeoutMs, 1500u);
    EXPECT_EQ(ro.retry.maxAttempts, 5u);
    EXPECT_EQ(ro.journalPath, "j.log");
    EXPECT_TRUE(ro.resume);
}

// ---------------------------------------------------------------- //
// Traffic flags
// ---------------------------------------------------------------- //

TEST(Cli, TrafficFlagsPopulateOptions)
{
    bench::TrafficOptions t;
    Cli cli("testprog");
    bench::addTrafficFlags(cli, t);
    // --arrival is repeatable: each use appends one sweep point.
    Args args({"--streams", "8", "--zipf-theta", "0.5", "--arrival",
               "4000", "--arrival", "125.5", "--bursty", "--seed",
               "7"});
    cli.parse(args.argc(), args.argv());

    EXPECT_EQ(t.streams, 8u);
    EXPECT_DOUBLE_EQ(t.zipfTheta, 0.5);
    ASSERT_EQ(t.arrivalGaps.size(), 2u);
    EXPECT_DOUBLE_EQ(t.arrivalGaps[0], 4000.0);
    EXPECT_DOUBLE_EQ(t.arrivalGaps[1], 125.5);
    EXPECT_TRUE(t.bursty);
    EXPECT_EQ(t.seed, 7u);
}

TEST(CliDeathTest, ZeroStreamsIsRejected)
{
    bench::TrafficOptions t;
    Cli cli("testprog");
    bench::addTrafficFlags(cli, t);
    Args args({"--streams", "0"});
    EXPECT_EXIT(cli.parse(args.argc(), args.argv()),
                ::testing::ExitedWithCode(2),
                "--streams must be >= 1");
}

TEST(CliDeathTest, DivergentZipfThetaIsRejected)
{
    bench::TrafficOptions t;
    Cli cli("testprog");
    bench::addTrafficFlags(cli, t);
    Args args({"--zipf-theta", "1.0"});
    EXPECT_EXIT(cli.parse(args.argc(), args.argv()),
                ::testing::ExitedWithCode(2),
                "--zipf-theta must be in");
}

TEST(CliDeathTest, NonPositiveArrivalGapIsRejected)
{
    bench::TrafficOptions t;
    Cli cli("testprog");
    bench::addTrafficFlags(cli, t);
    Args args({"--arrival", "0"});
    EXPECT_EXIT(cli.parse(args.argc(), args.argv()),
                ::testing::ExitedWithCode(2),
                "--arrival must be > 0");
}

} // namespace
} // namespace ede
