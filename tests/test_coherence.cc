/**
 * @file
 * Multi-core coherence and cross-core EDK ordering tests.
 *
 * The classic litmus shapes (MP, SB, LB) rebuilt as *timing*
 * litmus tests: traces are functionally pre-resolved, so the tests
 * assert the machine-level guarantees -- snoop traffic at the
 * coherence point, persist-event order at the NVM, WAIT gating
 * across cores -- rather than racy load values.  Every multi-core
 * shape is run under both the skip-ahead and the reference tickers,
 * which must agree cycle-for-cycle, and a single-core machine built
 * through the refactored System must match the legacy raw-core run
 * loop bit-identically.
 */

#include <gtest/gtest.h>

#include "apps/concurrent.hh"
#include "mem/mem_system.hh"
#include "pipeline/core.hh"
#include "sim/session.hh"
#include "trace/builder.hh"

namespace ede {
namespace {

constexpr Addr kLineMask = ~Addr{63};

/** n-deep dependent ALU chain: delays everything after it. */
void
filler(TraceBuilder &b, int n)
{
    for (int i = 0; i < n; ++i)
        b.alu(5, 5, kNoReg, 1);
}

/** Index of the first persist event touching @p addr's line. */
std::size_t
persistIndexOf(const System &sys, Addr addr)
{
    const auto &evs = sys.persistEvents();
    for (std::size_t i = 0; i < evs.size(); ++i) {
        if ((evs[i].addr & kLineMask) == (addr & kLineMask))
            return i;
    }
    ADD_FAILURE() << "no persist event for line 0x" << std::hex
                  << (addr & kLineMask);
    return evs.size();
}

Addr
nvmLine(int i)
{
    return MemSystemParams{}.map.nvmBase() + 0x40000 +
           static_cast<Addr>(i) * 64;
}

constexpr Addr
dramLine(int i)
{
    return 0x180000 + static_cast<Addr>(i) * 64;
}

// ---------------------------------------------------------------------
// Coherence point: snoop traffic between private L1s.
// ---------------------------------------------------------------------

TEST(Coherence, StoreInvalidatesPeerCopy)
{
    // Core 0 dirties line X in its L1; core 1 writes the same line
    // much later, which must snoop-invalidate core 0's copy.
    std::vector<Trace> traces(2);
    {
        TraceBuilder b(traces[0]);
        b.str(2, 1, dramLine(0), 0x11);
    }
    {
        TraceBuilder b(traces[1]);
        filler(b, 400);  // Let core 0's store land in its L1 first.
        b.str(2, 1, dramLine(0), 0x22);
    }
    Session s(SimConfig::paper(Config::B).withCoreCount(2));
    const SimResult r = s.run(RunRequest::perCore(traces));
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r.stats.coherence.snoops, 1u);
    EXPECT_GE(r.stats.coherence.invalidations, 1u);
    EXPECT_GE(s.system().mem().l1d(0).stats().snoopInvalidations, 1u);
    EXPECT_EQ(s.system().mem().l1d(1).stats().snoopInvalidations, 0u);
}

TEST(Coherence, LoadDowngradesDirtyPeerAndHandsOff)
{
    // Core 1 reads a line core 0 holds dirty: the peer copy is
    // downgraded and the dirty data lands at the shared L2 so the
    // reader's fill observes it (a modelled cache-to-cache transfer).
    std::vector<Trace> traces(2);
    {
        TraceBuilder b(traces[0]);
        b.str(2, 1, dramLine(1), 0x33);
    }
    {
        TraceBuilder b(traces[1]);
        filler(b, 400);
        b.ldr(3, 1, dramLine(1));
    }
    Session s(SimConfig::paper(Config::B).withCoreCount(2));
    const SimResult r = s.run(RunRequest::perCore(traces));
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r.stats.coherence.downgrades, 1u);
    EXPECT_GE(r.stats.coherence.dirtyHandoffs, 1u);
    EXPECT_GE(s.system().mem().l1d(0).stats().snoopDowngrades, 1u);
}

TEST(Coherence, SingleCoreHasNoCoherenceTraffic)
{
    // The N=1 machine must execute zero snoop code: the coherence
    // counters stay identically zero.
    Trace t;
    {
        TraceBuilder b(t);
        b.str(2, 1, dramLine(2), 0x44);
        b.ldr(3, 1, dramLine(2));
        b.ldr(4, 1, dramLine(3));
    }
    Session s(SimConfig::paper(Config::B));
    const SimResult r = s.run(RunRequest::of(t));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.stats.coreCount, 1);
    ASSERT_EQ(r.stats.perCore.size(), 1u);
    EXPECT_EQ(r.stats.coherence.snoops, 0u);
    EXPECT_EQ(r.stats.coherence.invalidations, 0u);
    EXPECT_EQ(r.stats.coherence.downgrades, 0u);
    EXPECT_EQ(r.stats.coherence.dirtyHandoffs, 0u);
}

// ---------------------------------------------------------------------
// MP (message passing): data must persist before the flag, under the
// fence lowering (B) and under both EDE realizations (IQ, WB).
// ---------------------------------------------------------------------

std::vector<Trace>
mpTraces(Config cfg)
{
    const Addr data = nvmLine(0);
    const Addr flag = nvmLine(1);
    std::vector<Trace> traces(2);
    {
        TraceBuilder b(traces[0]);
        b.str(2, 1, data, 0xd0);
        if (cfg == Config::B) {
            b.cvap(1, data);
            b.dsbSy();
            b.str(3, 1, flag, 1);
        } else {
            // IQ / WB: the persist defines key 1, the publishing
            // store consumes it -- no fence.
            b.cvap(1, data, {1, 0});
            b.str(3, 1, flag, 1, 0, {0, 1});
        }
        b.cvap(1, flag);
    }
    {
        TraceBuilder b(traces[1]);
        b.ldr(3, 1, flag);
        b.ldr(4, 1, data);
    }
    return traces;
}

class MpLitmus : public ::testing::TestWithParam<Config> {};

TEST_P(MpLitmus, DataPersistsBeforeFlag)
{
    Session s(SimConfig::paper(GetParam()).withCoreCount(2));
    const SimResult r = s.run(RunRequest::perCore(mpTraces(GetParam())));
    ASSERT_TRUE(r.ok());
    const std::size_t data_at = persistIndexOf(s.system(), nvmLine(0));
    const std::size_t flag_at = persistIndexOf(s.system(), nvmLine(1));
    EXPECT_LT(data_at, flag_at);
    // Both persists came from core 0.
    EXPECT_EQ(s.system().persistEvents().at(data_at).core, 0u);
    EXPECT_EQ(s.system().persistEvents().at(flag_at).core, 0u);
}

TEST_P(MpLitmus, TickingModesAgree)
{
    Session skip(SimConfig::paper(GetParam())
                     .withCoreCount(2)
                     .withTicking(TickingMode::SkipAhead));
    Session ref(SimConfig::paper(GetParam())
                    .withCoreCount(2)
                    .withTicking(TickingMode::Reference));
    const SimResult a = skip.run(RunRequest::perCore(mpTraces(GetParam())));
    const SimResult b = ref.run(RunRequest::perCore(mpTraces(GetParam())));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.stats.perCore.size(), b.stats.perCore.size());
    for (std::size_t i = 0; i < a.stats.perCore.size(); ++i) {
        EXPECT_EQ(a.stats.perCore[i].stats.cycles,
                  b.stats.perCore[i].stats.cycles);
        EXPECT_EQ(a.stats.perCore[i].stats.retired,
                  b.stats.perCore[i].stats.retired);
    }
}

INSTANTIATE_TEST_SUITE_P(Configs, MpLitmus,
                         ::testing::Values(Config::B, Config::IQ,
                                           Config::WB),
                         [](const auto &info) {
                             return std::string(
                                 configName(info.param));
                         });

// ---------------------------------------------------------------------
// Cross-core WAIT_KEY: a waiter on core 1 drains core 0's in-flight
// keyed persists through the cross-core counter aggregation.
// ---------------------------------------------------------------------

std::vector<Trace>
waitKeyTraces(bool wait)
{
    std::vector<Trace> traces(2);
    {
        TraceBuilder b(traces[0]);
        b.str(2, 1, nvmLine(2), 0xaa);
        b.cvap(1, nvmLine(2), {1, 0});  // Defines key 1.
    }
    {
        TraceBuilder b(traces[1]);
        // A few cycles so core 0's keyed persist is in flight (it
        // enters the tracked window at dispatch, cycles earlier).
        filler(b, 6);
        if (wait)
            b.waitKey(1);
        b.str(3, 1, nvmLine(3), 0xbb);
        b.cvap(1, nvmLine(3));
    }
    return traces;
}

TEST(CrossCoreWait, WaitKeyDrainsRemoteKeyedPersist)
{
    Session s(SimConfig::paper(Config::IQ).withCoreCount(2));
    const SimResult r = s.run(RunRequest::perCore(waitKeyTraces(/*wait=*/true)));
    ASSERT_TRUE(r.ok());
    // Core 0's keyed persist reaches the persistence domain before
    // core 1's dependent publish.
    const std::size_t remote = persistIndexOf(s.system(), nvmLine(2));
    const std::size_t local = persistIndexOf(s.system(), nvmLine(3));
    EXPECT_LT(remote, local);
    EXPECT_EQ(s.system().persistEvents().at(remote).core, 0u);
    EXPECT_EQ(s.system().persistEvents().at(local).core, 1u);
}

TEST(CrossCoreWait, WaitKeyActuallyGates)
{
    // The same shape without the WAIT finishes core 1 strictly
    // earlier: the wait really does stall on the remote counter.
    Session waited(SimConfig::paper(Config::IQ).withCoreCount(2));
    Session free_run(SimConfig::paper(Config::IQ).withCoreCount(2));
    const SimResult w = waited.run(RunRequest::perCore(waitKeyTraces(/*wait=*/true)));
    const SimResult f = free_run.run(RunRequest::perCore(waitKeyTraces(/*wait=*/false)));
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(f.ok());
    EXPECT_GT(w.stats.perCore.at(1).stats.cycles,
              f.stats.perCore.at(1).stats.cycles);
}

TEST(CrossCoreWait, TickingModesAgree)
{
    Session skip(SimConfig::paper(Config::IQ)
                     .withCoreCount(2)
                     .withTicking(TickingMode::SkipAhead));
    Session ref(SimConfig::paper(Config::IQ)
                    .withCoreCount(2)
                    .withTicking(TickingMode::Reference));
    const SimResult a = skip.run(RunRequest::perCore(waitKeyTraces(/*wait=*/true)));
    const SimResult b = ref.run(RunRequest::perCore(waitKeyTraces(/*wait=*/true)));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.stats.perCore.at(0).stats.cycles,
              b.stats.perCore.at(0).stats.cycles);
    EXPECT_EQ(a.stats.perCore.at(1).stats.cycles,
              b.stats.perCore.at(1).stats.cycles);
}

// ---------------------------------------------------------------------
// SB / LB shapes: the classic store-buffering and load-buffering
// interleavings complete without deadlock, generate the expected
// snoop traffic, and tick identically under both schedulers.
// ---------------------------------------------------------------------

std::vector<Trace>
sbTraces()
{
    std::vector<Trace> traces(2);
    for (int c = 0; c < 2; ++c) {
        TraceBuilder b(traces[c]);
        b.str(2, 1, dramLine(4 + c), 1 + c);
        filler(b, 400);  // Let the peer's store land before reading.
        b.ldr(3, 1, dramLine(4 + (1 - c)));
    }
    return traces;
}

std::vector<Trace>
lbTraces()
{
    std::vector<Trace> traces(2);
    for (int c = 0; c < 2; ++c) {
        TraceBuilder b(traces[c]);
        b.ldr(3, 1, dramLine(6 + (1 - c)));
        b.str(2, 1, dramLine(6 + c), 1 + c);
    }
    return traces;
}

TEST(Coherence, SbBothReadersSeePeerLines)
{
    Session s(SimConfig::paper(Config::B).withCoreCount(2));
    const SimResult r = s.run(RunRequest::perCore(sbTraces()));
    ASSERT_TRUE(r.ok());
    // Each reader pulled the peer's dirty line across the coherence
    // point.
    EXPECT_GE(r.stats.coherence.downgrades, 2u);
    EXPECT_GE(r.stats.coherence.dirtyHandoffs, 2u);
}

TEST(Coherence, SbAndLbTickingModesAgree)
{
    for (bool sb : {true, false}) {
        Session skip(SimConfig::paper(Config::B)
                         .withCoreCount(2)
                         .withTicking(TickingMode::SkipAhead));
        Session ref(SimConfig::paper(Config::B)
                        .withCoreCount(2)
                        .withTicking(TickingMode::Reference));
        const SimResult a = skip.run(RunRequest::perCore(sb ? sbTraces() : lbTraces()));
        const SimResult b = ref.run(RunRequest::perCore(sb ? sbTraces() : lbTraces()));
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        EXPECT_EQ(a.stats.cycles, b.stats.cycles)
            << (sb ? "SB" : "LB");
        for (std::size_t i = 0; i < 2; ++i) {
            EXPECT_EQ(a.stats.perCore[i].stats.cycles,
                      b.stats.perCore[i].stats.cycles);
        }
    }
}

// ---------------------------------------------------------------------
// The concurrent kernels, small: ticking parity on a real workload.
// ---------------------------------------------------------------------

TEST(Coherence, ConcurrentKernelsTickingParity)
{
    for (ConcApp app : kAllConcApps) {
        ConcParams cp;
        cp.cfg = Config::WB;
        cp.cores = 2;
        cp.opsPerCore = 24;
        const std::vector<Trace> traces =
            buildConcurrentTraces(app, cp);
        Session skip(SimConfig::paper(Config::WB)
                         .withCoreCount(2)
                         .withTicking(TickingMode::SkipAhead));
        Session ref(SimConfig::paper(Config::WB)
                        .withCoreCount(2)
                        .withTicking(TickingMode::Reference));
        const SimResult a = skip.run(RunRequest::perCore(traces));
        const SimResult b = ref.run(RunRequest::perCore(traces));
        ASSERT_TRUE(a.ok()) << concAppName(app);
        ASSERT_TRUE(b.ok()) << concAppName(app);
        EXPECT_EQ(a.stats.cycles, b.stats.cycles) << concAppName(app);
        for (std::size_t i = 0; i < 2; ++i) {
            EXPECT_EQ(a.stats.perCore[i].stats.retired,
                      b.stats.perCore[i].stats.retired)
                << concAppName(app);
        }
    }
}

// ---------------------------------------------------------------------
// Single-core equivalence: the refactored System on one core must be
// bit-identical to the legacy raw OoOCore::run loop.
// ---------------------------------------------------------------------

TEST(SingleCoreEquivalence, SystemMatchesLegacyRunLoop)
{
    ConcParams cp;
    cp.cfg = Config::IQ;
    cp.cores = 1;
    cp.opsPerCore = 48;
    const std::vector<Trace> traces =
        buildConcurrentTraces(ConcApp::MsQueue, cp);

    const SimConfig sc = SimConfig::paper(Config::IQ);
    Session session(sc);
    const SimResult via_system = session.run(RunRequest::perCore(traces));
    ASSERT_TRUE(via_system.ok());

    MemSystem mem(sc.params().mem);
    OoOCore core(sc.params().core, mem);
    core.run(traces[0]);
    ASSERT_EQ(core.simError().kind, SimErrorKind::None);

    const CoreStats &a = via_system.stats.core;
    const CoreStats &b = core.stats();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.issuedOps, b.issuedOps);
    EXPECT_EQ(a.dispatched, b.dispatched);
    EXPECT_EQ(a.retireStallWbFull, b.retireStallWbFull);
    EXPECT_EQ(a.dispatchStallRob, b.dispatchStallRob);
    EXPECT_EQ(via_system.stats.wb.pushes, core.wbStats().pushes);
    EXPECT_EQ(via_system.stats.l1d.hits, mem.l1d().stats().hits);
    EXPECT_EQ(via_system.stats.l1d.misses, mem.l1d().stats().misses);
}

// ---------------------------------------------------------------------
// Config plumbing: validation and the per-core result surface.
// ---------------------------------------------------------------------

TEST(MultiCoreConfig, CoreCountValidation)
{
    EXPECT_EQ(SimConfig::paper(Config::B)
                  .withCoreCount(0)
                  .validate()
                  .countOf(SimConfigCheck::CoreCountInvalid),
              1u);
    EXPECT_EQ(SimConfig::paper(Config::B)
                  .withCoreCount(65)
                  .validate()
                  .countOf(SimConfigCheck::CoreCountInvalid),
              1u);
    EXPECT_EQ(SimConfig::paper(Config::B)
                  .withCoreCount(8)
                  .validate()
                  .countOf(SimConfigCheck::CoreCountInvalid),
              0u);
}

TEST(MultiCoreConfig, PerCoreResultSurface)
{
    Session s(SimConfig::paper(Config::B).withCoreCount(2));
    const SimResult r = s.run(RunRequest::perCore(mpTraces(Config::B)));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.stats.coreCount, 2);
    ASSERT_EQ(r.stats.perCore.size(), 2u);
    EXPECT_EQ(r.stats.perCore[0].core, 0u);
    EXPECT_EQ(r.stats.perCore[1].core, 1u);
    // The legacy scalar fields alias core 0's breakdown, and the
    // machine run length is the slowest core.
    EXPECT_EQ(r.stats.core.cycles, r.stats.perCore[0].stats.cycles);
    EXPECT_EQ(r.stats.cycles,
              std::max(r.stats.perCore[0].stats.cycles,
                       r.stats.perCore[1].stats.cycles));
}

} // namespace
} // namespace ede
