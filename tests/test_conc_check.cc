/**
 * @file
 * Cross-core crash-consistency checker tests.
 *
 * Four layers: closed-form mathematics of the joint two-core lattice
 * (independent cores multiply their ideal counts; a cross-core WAIT
 * edge strictly shrinks the lattice), structural properties of the
 * joint persist order derived from real N-core runs (cross-core
 * edges present, remote persists genuinely outstanding at crash
 * points), the sensitivity gate (the seeded missing-WAIT bug is
 * detected with a shrunk counterexample at 2 and 4 cores while the
 * intact program verifies clean), and the cross-validation tying the
 * multi-core fault campaign to the checker: every sampled cross-core
 * crash image is an ideal of the joint lattice and re-materializes
 * byte-identically through the checker's path.
 */

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "apps/conc_harness.hh"
#include "fault/conc_campaign.hh"
#include "fault/conc_check.hh"
#include "fault/crash_image.hh"
#include "fault/model_check/checker.hh"
#include "sim/session.hh"

namespace ede {
namespace {

/* ------------------------------------------------------------------ */
/* Closed-form joint-lattice mathematics.                              */
/* ------------------------------------------------------------------ */

using Edge = std::pair<std::size_t, std::size_t>;

/**
 * A two-core joint graph: core 0 contributes a chain of @p m nodes,
 * core 1 a chain of @p n nodes, interleaved in accept order (core 0
 * even cycles, core 1 odd) on distinct 256 B media lines, plus the
 * given extra cross-core edges.
 */
PersistOrderGraph
jointGraph(std::size_t m, std::size_t n,
           const std::vector<Edge> &cross = {})
{
    PersistOrderGraph g;
    g.nodes.resize(m + n);
    for (std::size_t i = 0; i < m + n; ++i) {
        g.nodes[i].addr = 0x10000 + 256 * i;
        g.nodes[i].size = 64;
        g.nodes[i].accept = 100 + 10 * i;
    }
    // Core 0 owns indices [0, m), core 1 owns [m, m + n); each core's
    // events form a chain, exactly like a per-core persist walk.
    for (std::size_t i = 1; i < m; ++i)
        g.nodes[i].preds.push_back(i - 1);
    for (std::size_t i = m + 1; i < m + n; ++i)
        g.nodes[i].preds.push_back(i - 1);
    for (const Edge &e : cross)
        g.nodes[e.second].preds.push_back(e.first);
    g.finalize();
    return g;
}

TEST(ConcLattice, IndependentCoresIdealsMultiply)
{
    // Two independent per-core chains: ideals are pairs of per-chain
    // prefixes, so the counts multiply: (m + 1) * (n + 1).
    EXPECT_EQ(countOrderIdeals(jointGraph(2, 2)), 9u);
    EXPECT_EQ(countOrderIdeals(jointGraph(3, 2)), 12u);
    EXPECT_EQ(countOrderIdeals(jointGraph(4, 5)), 30u);
    EXPECT_EQ(countOrderIdeals(jointGraph(0, 3)), 4u);
}

TEST(ConcLattice, CrossCoreWaitEdgeStrictlyShrinks)
{
    // WAIT-coupling the cores removes every ideal containing the
    // consumer's event without the producer's: strictly fewer states
    // than the independent product, and monotonically fewer as more
    // cross-core edges land.
    const std::uint64_t independent = countOrderIdeals(jointGraph(2, 2));
    ASSERT_EQ(independent, 9u);

    // Core 1's second event (index 3) waits on core 0's first (0):
    // kills {3-without-0} ideals -- here exactly {1: the set {2,3}}
    // ... enumerate rather than hand-count:
    const std::uint64_t oneWait =
        countOrderIdeals(jointGraph(2, 2, {{0, 3}}));
    EXPECT_LT(oneWait, independent);

    // A tighter WAIT (consumer's first event behind the producer's
    // last) removes at least as many states again.
    const std::uint64_t tightWait =
        countOrderIdeals(jointGraph(2, 2, {{0, 3}, {1, 2}}));
    EXPECT_LT(tightWait, oneWait);

    // Fully serialized cores degenerate to one chain: m + n + 1.
    EXPECT_EQ(countOrderIdeals(jointGraph(2, 2, {{1, 2}})), 5u);

    // Every surviving ideal is still downward closed and legal.
    const PersistOrderGraph g = jointGraph(2, 2, {{0, 3}});
    std::uint64_t seen = 0;
    forEachDurableSet(g, {}, [&](const DurableSetView &view) {
        ++seen;
        EXPECT_TRUE(isLegalDurableSet(g, FaultPlan::kDrainAll,
                                      view.postSetup));
        const std::set<std::size_t> in(view.postSetup.begin(),
                                       view.postSetup.end());
        for (std::size_t i : view.postSetup) {
            for (std::size_t p : g.nodes[i].preds)
                EXPECT_TRUE(in.count(p));
        }
        return true;
    });
    EXPECT_EQ(seen, oneWait);
}

/* ------------------------------------------------------------------ */
/* Joint order of real N-core runs.                                    */
/* ------------------------------------------------------------------ */

/** One audited paced run in the slow-media regime. */
std::unique_ptr<ConcurrentHarness>
concRun(ConcApp app, Config cfg, unsigned cores, int opsPerCore,
        std::uint64_t seed)
{
    ConcParams p;
    p.cfg = cfg;
    p.cores = cores;
    p.opsPerCore = opsPerCore;
    p.seed = seed;
    p.paced = true;
    auto h = std::make_unique<ConcurrentHarness>(app, p,
                                                 /*mediaFactor=*/8);
    h->generate();
    h->simulateChecked();
    return h;
}

TEST(ConcOrder, JointGraphCarriesCrossCoreEdges)
{
    // IQ expresses the remote drain as WAIT_KEY on the producer's
    // key: the joint walk must find cross-core WAIT edges.  (The
    // rwlock gate workload is the interleaving known to put a durable
    // read behind a remote writer; msqueue at the default seed
    // happens to dequeue only local nodes.)
    auto iq = concRun(ConcApp::RwLock, Config::IQ, 2, 4, 57);
    const PersistOrderGraph jointIq = buildConcPersistOrder(*iq);
    EXPECT_GT(jointIq.nodes.size(), 0u);
    EXPECT_EQ(jointIq.preSetupCount, 0u);
    EXPECT_EQ(jointIq.stats.nonmonotone, 0u);
    EXPECT_GT(jointIq.stats.crossWait, 0u);

    // B drains remotely by re-CVAP + DSB SY: no WAITs anywhere, the
    // ordering shows up as fence edges instead.
    auto b = concRun(ConcApp::RwLock, Config::B, 2, 4, 57);
    const PersistOrderGraph jointB = buildConcPersistOrder(*b);
    EXPECT_EQ(jointB.stats.crossWait, 0u);
    EXPECT_GT(jointB.stats.fence, 0u);
}

TEST(ConcOrder, RemotePersistsOutstandingAtCrashPoints)
{
    // The slow-media regime must create crash points where a remote
    // (non-0) core's accepted persist has not reached the media --
    // the window the campaign's injection targets.
    auto h = concRun(ConcApp::MsQueue, Config::IQ, 2, 4, 42);
    const PersistOrderGraph g = buildConcPersistOrder(*h);
    const auto &events = h->system().persistEvents();
    ASSERT_EQ(g.nodes.size(), events.size());

    std::size_t remoteWindows = 0;
    for (const PersistEvent &at : events) {
        for (std::size_t i = 0; i < g.nodes.size(); ++i) {
            if (events[i].core == 0)
                continue;
            if (g.nodes[i].accept <= at.cycle &&
                (g.nodes[i].mediaCycle == kNoCycle ||
                 g.nodes[i].mediaCycle > at.cycle)) {
                ++remoteWindows;
                break;
            }
        }
    }
    EXPECT_GT(remoteWindows, 0u);
}

/* ------------------------------------------------------------------ */
/* Campaign cross-validation: containment and re-materialization.      */
/* ------------------------------------------------------------------ */

TEST(ConcCheck, CampaignImagesLieInsideTheJointLattice)
{
    for (Config cfg : {Config::B, Config::IQ, Config::WB}) {
        auto h = concRun(ConcApp::MsQueue, cfg, 2, 4, 42);
        const PersistOrderGraph graph = buildConcPersistOrder(*h);
        const ConcModel &model = h->model();
        const DurableSetChecker checker(
            h->system().persistEvents(), h->baselineNvm(), graph,
            [&model](MemoryImage &img) {
                DurableSetChecker::StateVerdict v;
                v.invariant = checkConcInvariants(model, img);
                v.appOk = v.invariant == nullptr;
                return v;
            });
        const auto &events = h->system().persistEvents();
        const auto &media = h->system().mediaWriteEvents();
        ASSERT_FALSE(events.empty());

        std::set<Cycle> crashes;
        for (const PersistEvent &ev : events) {
            crashes.insert(ev.cycle);
            crashes.insert(ev.cycle + 1);
        }
        std::vector<FaultPlan> plans;
        for (std::uint32_t drain : {FaultPlan::kDrainAll, 2u, 1u}) {
            for (TearKind tear :
                 {TearKind::None, TearKind::Prefix,
                  TearKind::Interleaved}) {
                FaultPlan plan;
                plan.seed = 0xc0c0ull + plans.size();
                plan.drainLines = drain;
                plan.tear = tear;
                plans.push_back(plan);
            }
        }

        std::size_t checkedImages = 0;
        for (Cycle crash : crashes) {
            for (const FaultPlan &plan : plans) {
                MemoryImage img = h->baselineNvm();
                const FaultyImageReport rep = applyFaultyPersistEvents(
                    img, events, media, crash, plan,
                    h->mediaLineBytes(), &graph);

                // All conc events are post-setup; the sampled durable
                // set is the accept-order prefix itself.
                ASSERT_EQ(graph.preSetupCount, 0u);
                std::vector<std::size_t> postSetup;
                for (std::size_t i = 0; i < rep.durableCount; ++i)
                    postSetup.push_back(i);

                // Inside the joint lattice under the same budget...
                EXPECT_TRUE(isLegalDurableSet(graph, plan.drainLines,
                                              postSetup))
                    << configName(cfg) << " crash=" << crash;

                // ...and byte-identical when re-materialized through
                // the checker.
                const std::size_t torn =
                    rep.tore ? rep.tornIdx : kNoEvent;
                const MemoryImage remat = checker.materialize(
                    postSetup, torn, rep.tornMask);
                EXPECT_TRUE(remat.contentEquals(img))
                    << configName(cfg) << " crash=" << crash
                    << " tear=" << tearKindName(plan.tear)
                    << " drain=" << plan.drainLines;
                ++checkedImages;
            }
        }
        EXPECT_GT(checkedImages, 100u) << configName(cfg);
    }
}

/* ------------------------------------------------------------------ */
/* The sensitivity gate.                                               */
/* ------------------------------------------------------------------ */

/**
 * The gate workload: four rwlock ops per core under workload seed 57
 * place a remote-drain WAIT on the critical producer-consumer edge,
 * so deleting it is observable at 2 and 4 cores while the intact
 * program verifies clean (the CI runs exactly these parameters).
 */
ConcCheckOptions
gateOptions(unsigned cores)
{
    ConcCheckOptions opts;
    opts.app = ConcApp::RwLock;
    opts.cores = cores;
    opts.opsPerCore = 4;
    opts.workloadSeed = 57;
    return opts;
}

TEST(ConcCheck, IntactConfigsVerifyCleanTwoCores)
{
    const ConcCheckReport report = runConcCheck(gateOptions(2));
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report.quarantined.empty());
    ASSERT_EQ(report.configs.size(), 3u);
    for (const ConcCheckConfigResult &r : report.configs) {
        EXPECT_EQ(r.violations, 0u) << configName(r.config);
        EXPECT_TRUE(r.counterexamples.empty());
        EXPECT_FALSE(r.truncated) << configName(r.config);
        EXPECT_EQ(r.seededBugOpIdx, kNoEvent);
        EXPECT_EQ(r.orderStats.nonmonotone, 0u);
        EXPECT_GT(r.states, 1u);
        EXPECT_GE(r.uniqueImages, 1u);
        EXPECT_EQ(r.recoveredClean, r.uniqueImages);
    }
}

TEST(ConcCheck, SeededWaitBugIsDetectedAndShrunkTwoCores)
{
    ConcCheckOptions opts = gateOptions(2);
    opts.seedBug = true;
    const ConcCheckReport report = runConcCheck(opts);

    // ok() under seedBug: planted bugs DETECTED, the fence-based
    // configuration (nothing to plant) still clean.
    EXPECT_TRUE(report.ok());
    ASSERT_EQ(report.configs.size(), 3u);

    const ConcCheckConfigResult &b = report.configs[0];
    EXPECT_EQ(b.config, Config::B);
    EXPECT_EQ(b.seededBugOpIdx, kNoEvent);
    EXPECT_EQ(b.violations, 0u);

    for (std::size_t i = 1; i < 3; ++i) {
        const ConcCheckConfigResult &r = report.configs[i];
        EXPECT_NE(r.seededBugOpIdx, kNoEvent) << configName(r.config);
        EXPECT_GT(r.violations, 0u) << configName(r.config);
        ASSERT_FALSE(r.counterexamples.empty())
            << configName(r.config);
        std::size_t minimal = ~0ull;
        for (const ConcCounterexample &cex : r.counterexamples) {
            // The consumer's write durable without the producer's:
            // a torn version under the rwlock oracle.
            EXPECT_EQ(cex.invariant, "rwlock-torn-write");
            EXPECT_FALSE(cex.durable.empty());
            minimal = std::min(minimal, cex.durable.size());
        }
        // The shrinker reduces the witness to (at most) the
        // producer/consumer pair -- the ISSUE's <= 2-event gate.
        EXPECT_LE(minimal, 2u) << configName(r.config);
    }
}

TEST(ConcCheck, SeededWaitBugGateFourCores)
{
    // The same gate at 4 cores; one EDE configuration keeps the
    // lattice small enough for a unit test.
    ConcCheckOptions clean = gateOptions(4);
    clean.configs = {Config::IQ};
    const ConcCheckReport cleanReport = runConcCheck(clean);
    EXPECT_TRUE(cleanReport.ok());
    ASSERT_EQ(cleanReport.configs.size(), 1u);
    EXPECT_EQ(cleanReport.configs[0].violations, 0u);
    EXPECT_GT(cleanReport.configs[0].orderStats.crossWait, 0u);

    ConcCheckOptions seeded = clean;
    seeded.seedBug = true;
    const ConcCheckReport report = runConcCheck(seeded);
    EXPECT_TRUE(report.ok());
    ASSERT_EQ(report.configs.size(), 1u);
    const ConcCheckConfigResult &r = report.configs[0];
    EXPECT_NE(r.seededBugOpIdx, kNoEvent);
    EXPECT_GT(r.violations, 0u);
    ASSERT_FALSE(r.counterexamples.empty());
    std::size_t minimal = ~0ull;
    for (const ConcCounterexample &cex : r.counterexamples)
        minimal = std::min(minimal, cex.durable.size());
    EXPECT_LE(minimal, 2u);
}

/* ------------------------------------------------------------------ */
/* Key partition and recovery oracle.                                  */
/* ------------------------------------------------------------------ */

TEST(ConcCheck, CoreCountKeyPartitionExhausts)
{
    // 15 real keys: EDE configurations generate up to 15 cores and
    // fail 16 with the validated structured error; fence-based B
    // never consumes keys and scales past the bound.
    ConcParams p;
    p.cfg = Config::IQ;
    p.opsPerCore = 1;

    p.cores = kMaxConcEdeCores;
    EXPECT_NO_THROW(
        buildConcurrentWorkload(ConcApp::MsQueue, p));

    p.cores = kMaxConcEdeCores + 1;
    try {
        buildConcurrentWorkload(ConcApp::MsQueue, p);
        FAIL() << "16 cores under IQ must exhaust the key partition";
    } catch (const SimFaultError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::CoreCountKeyExhausted);
    }

    p.cfg = Config::B;
    EXPECT_NO_THROW(
        buildConcurrentWorkload(ConcApp::MsQueue, p));
}

TEST(ConcOracle, ReceiptDemandsDataAtLeastAsDurable)
{
    // Fully drained run: clean.  Then forge durable-read receipts the
    // run never vouched for: the oracle must reject both a receipt
    // beyond any published version and a receipt newer than the data
    // it guards.
    auto h = concRun(ConcApp::RwLock, Config::IQ, 2, 4, 57);
    const PersistOrderGraph graph = buildConcPersistOrder(*h);
    const ConcModel &model = h->model();
    const DurableSetChecker checker(
        h->system().persistEvents(), h->baselineNvm(), graph,
        [&model](MemoryImage &img) {
            DurableSetChecker::StateVerdict v;
            v.invariant = checkConcInvariants(model, img);
            v.appOk = v.invariant == nullptr;
            return v;
        });

    std::vector<std::size_t> all;
    for (std::size_t i = 0; i < graph.nodes.size(); ++i)
        all.push_back(i);
    const MemoryImage full = checker.materialize(all);
    EXPECT_EQ(checkConcInvariants(model, full), nullptr);
    ASSERT_GT(model.maxVersion, 0u);

    MemoryImage phantom = full;
    phantom.write<std::uint64_t>(concRwReceipt(1),
                                 model.maxVersion + 1);
    EXPECT_STREQ(checkConcInvariants(model, phantom),
                 "rwlock-torn-write");

    MemoryImage stale = full;
    stale.write<std::uint64_t>(concRwReceipt(1), model.maxVersion);
    stale.write<std::uint64_t>(kConcRwData, model.maxVersion - 1);
    EXPECT_STREQ(checkConcInvariants(model, stale),
                 "rwlock-torn-write");
}

/* ------------------------------------------------------------------ */
/* Campaign, wire formats and isolation plumbing.                      */
/* ------------------------------------------------------------------ */

void
expectConcResultEq(const ConcCheckConfigResult &a,
                   const ConcCheckConfigResult &b)
{
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.freeEvents, b.freeEvents);
    EXPECT_EQ(a.orderStats.sameLine, b.orderStats.sameLine);
    EXPECT_EQ(a.orderStats.edk, b.orderStats.edk);
    EXPECT_EQ(a.orderStats.keyChain, b.orderStats.keyChain);
    EXPECT_EQ(a.orderStats.fence, b.orderStats.fence);
    EXPECT_EQ(a.orderStats.lineGate, b.orderStats.lineGate);
    EXPECT_EQ(a.orderStats.crossWait, b.orderStats.crossWait);
    EXPECT_EQ(a.orderStats.crossLine, b.orderStats.crossLine);
    EXPECT_EQ(a.orderStats.nonmonotone, b.orderStats.nonmonotone);
    EXPECT_EQ(a.states, b.states);
    EXPECT_EQ(a.rejectedBudget, b.rejectedBudget);
    EXPECT_EQ(a.tornVariants, b.tornVariants);
    EXPECT_EQ(a.uniqueImages, b.uniqueImages);
    EXPECT_EQ(a.recoveredClean, b.recoveredClean);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.truncated, b.truncated);
    EXPECT_EQ(a.seededBugOpIdx, b.seededBugOpIdx);
    EXPECT_EQ(a.seededBugCore, b.seededBugCore);
    ASSERT_EQ(a.counterexamples.size(), b.counterexamples.size());
    for (std::size_t i = 0; i < a.counterexamples.size(); ++i) {
        EXPECT_EQ(a.counterexamples[i].invariant,
                  b.counterexamples[i].invariant);
        EXPECT_EQ(a.counterexamples[i].durable,
                  b.counterexamples[i].durable);
        EXPECT_EQ(a.counterexamples[i].tornIdx,
                  b.counterexamples[i].tornIdx);
        EXPECT_EQ(a.counterexamples[i].tornMask,
                  b.counterexamples[i].tornMask);
        EXPECT_EQ(a.counterexamples[i].imageHash,
                  b.counterexamples[i].imageHash);
    }
}

TEST(ConcCheck, WireFormatRoundTrips)
{
    // A result with counterexamples (the hardest payload) from a real
    // seeded-bug run.
    ConcCheckOptions opts = gateOptions(2);
    opts.seedBug = true;
    opts.configs = {Config::IQ};
    const ConcCheckReport report = runConcCheck(opts);
    ASSERT_EQ(report.configs.size(), 1u);
    ASSERT_FALSE(report.configs[0].counterexamples.empty());

    const std::string wire =
        serializeConcCheckResult(report.configs[0]);
    const auto back = deserializeConcCheckResult(wire);
    ASSERT_TRUE(back.has_value());
    expectConcResultEq(report.configs[0], *back);

    EXPECT_FALSE(deserializeConcCheckResult("").has_value());
    EXPECT_FALSE(deserializeConcCheckResult("junk\n").has_value());
}

TEST(ConcCheck, SweepIdCoversTheSearchParameters)
{
    const ConcCheckOptions base = gateOptions(2);
    const std::uint64_t id = concCheckSweepId(base);

    ConcCheckOptions mut = base;
    mut.cores = 4;
    EXPECT_NE(concCheckSweepId(mut), id);
    mut = base;
    mut.opsPerCore = 6;
    EXPECT_NE(concCheckSweepId(mut), id);
    mut = base;
    mut.workloadSeed = 58;
    EXPECT_NE(concCheckSweepId(mut), id);
    mut = base;
    mut.mediaFactor = 4;
    EXPECT_NE(concCheckSweepId(mut), id);
    mut = base;
    mut.seedBug = true;
    EXPECT_NE(concCheckSweepId(mut), id);
    mut = base;
    mut.app = ConcApp::MsQueue;
    EXPECT_NE(concCheckSweepId(mut), id);

    // Isolation knobs do not change the experiment's identity.
    mut = base;
    mut.isolate = true;
    mut.jobs = 4;
    EXPECT_EQ(concCheckSweepId(mut), id);
}

TEST(ConcCheck, ChaosCrashQuarantinesTheConfig)
{
    ConcCheckOptions opts = gateOptions(2);
    opts.configs = {Config::B, Config::IQ};
    opts.isolate = true;
    opts.retry.maxAttempts = 2;
    opts.retry.backoffBaseMs = 1;
    opts.retry.backoffMaxMs = 2;
    opts.chaosCrashConfig = "IQ";
    const ConcCheckReport report = runConcCheck(opts);

    EXPECT_FALSE(report.ok());
    ASSERT_EQ(report.quarantined.size(), 1u);
    EXPECT_EQ(report.quarantined[0].config, Config::IQ);
    ASSERT_EQ(report.configs.size(), 1u);
    EXPECT_EQ(report.configs[0].config, Config::B);
    EXPECT_EQ(report.configs[0].violations, 0u);
}

TEST(ConcCampaign, TargetsRemoteWindowsAndRoundTrips)
{
    ConcCampaignOptions opts;
    opts.app = ConcApp::MsQueue;
    opts.cores = 2;
    opts.opsPerCore = 4;
    opts.workloadSeed = 42;
    opts.pointsPerConfig = 24;
    opts.acceptFaultRate = 0.0;
    opts.configs = {Config::B, Config::IQ, Config::U};
    const ConcCampaignReport report = runConcCampaign(opts);

    // U is declared-unsafe: whatever it exposes never fails ok().
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report.quarantined.empty());
    ASSERT_EQ(report.configs.size(), 3u);

    std::size_t remote = 0;
    for (const ConcCampaignConfigResult &c : report.configs) {
        EXPECT_GT(c.points, 0u) << configName(c.config);
        remote += c.remotePoints;
        if (!configIsUnsafe(c.config)) {
            EXPECT_EQ(c.unrecoverable, 0u) << configName(c.config);
            EXPECT_EQ(c.recovered, c.points) << configName(c.config);
        }
        // Wire format: field-exact round trip.
        const auto back = deserializeConcCampaignResult(
            serializeConcCampaignResult(c));
        ASSERT_TRUE(back.has_value()) << configName(c.config);
        EXPECT_EQ(back->config, c.config);
        EXPECT_EQ(back->cycles, c.cycles);
        EXPECT_EQ(back->points, c.points);
        EXPECT_EQ(back->remotePoints, c.remotePoints);
        EXPECT_EQ(back->recovered, c.recovered);
        EXPECT_EQ(back->unrecoverable, c.unrecoverable);
        ASSERT_EQ(back->results.size(), c.results.size());
        for (std::size_t i = 0; i < c.results.size(); ++i) {
            EXPECT_EQ(back->results[i].crashCycle,
                      c.results[i].crashCycle);
            EXPECT_EQ(back->results[i].outcome, c.results[i].outcome);
            EXPECT_EQ(back->results[i].remoteOutstanding,
                      c.results[i].remoteOutstanding);
            EXPECT_EQ(back->results[i].invariant,
                      c.results[i].invariant);
            EXPECT_EQ(back->results[i].plan.seed,
                      c.results[i].plan.seed);
        }
        ASSERT_EQ(back->failures.size(), c.failures.size());
    }
    // The stratified sampler must actually land in the
    // crash-during-remote-persist window.
    EXPECT_GT(remote, 0u);

    EXPECT_FALSE(deserializeConcCampaignResult("junk\n").has_value());
}

} // namespace
} // namespace ede
