/**
 * @file
 * Crash-and-recover tests: reconstruct the durable NVM state at
 * arbitrary crash cycles, run undo-log recovery, and validate the
 * application's failure-atomicity property.
 *
 * Safe configurations (B, IQ, WB) must recover to a transaction
 * boundary from EVERY crash point; the fully unsafe configuration
 * must exhibit at least one unrecoverable crash point.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/harness.hh"

namespace ede {
namespace {

std::vector<Cycle>
crashPoints(const WorkloadHarness &h, std::size_t budget)
{
    // Candidates: the cycle of each persist event and the cycle right
    // after it -- the only windows where the durable image changes.
    // Crashes before the initial structure is durable see a
    // half-built pool (real deployments create pools atomically), so
    // only the transaction phase is probed.
    const Cycle setup_done = h.setupCompleteCycle();
    std::vector<Cycle> candidates;
    for (const PersistEvent &ev : h.system().persistEvents()) {
        if (ev.cycle < setup_done)
            continue;
        candidates.push_back(ev.cycle);
        candidates.push_back(ev.cycle + 1);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(
        std::unique(candidates.begin(), candidates.end()),
        candidates.end());
    if (candidates.size() <= budget)
        return candidates;

    // Stratify over transaction-commit boundaries so every
    // inter-commit window is probed, instead of wherever random
    // samples happen to land.  Fully deterministic: same workload,
    // same points.
    std::vector<Cycle> commits = h.commitCycles();
    std::sort(commits.begin(), commits.end());
    std::vector<std::vector<Cycle>> strata(commits.size() + 1);
    for (Cycle c : candidates) {
        const std::size_t s = static_cast<std::size_t>(
            std::lower_bound(commits.begin(), commits.end(), c) -
            commits.begin());
        strata[s].push_back(c);
    }
    std::erase_if(strata,
                  [](const auto &s) { return s.empty(); });
    std::vector<Cycle> points;
    const std::size_t quota =
        std::max<std::size_t>(1, budget / strata.size());
    for (const auto &s : strata) {
        const std::size_t take = std::min(quota, s.size());
        for (std::size_t j = 0; j < take; ++j)
            points.push_back(s[j * s.size() / take]);
    }
    return points;
}

using SafeParam = std::tuple<AppId, Config>;

class SafeRecoveryTest : public ::testing::TestWithParam<SafeParam>
{
};

TEST_P(SafeRecoveryTest, EveryCrashPointRecoversToABoundary)
{
    const auto [app, cfg] = GetParam();
    RunSpec spec;
    spec.txns = 4;
    spec.opsPerTxn = 5;
    WorkloadHarness h(app, cfg, spec);
    h.enableAudit();
    h.generate();
    h.simulate();
    ASSERT_TRUE(h.audit().clean());
    for (Cycle c : crashPoints(h, 16)) {
        const MemoryImage recovered = h.recoveredImageAt(c);
        EXPECT_TRUE(h.app().checkRecovered(recovered))
            << "crash at cycle " << c << " not recoverable under "
            << configName(cfg);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SafeConfigs, SafeRecoveryTest,
    ::testing::Combine(::testing::ValuesIn(kAllApps),
                       ::testing::Values(Config::B, Config::IQ,
                                         Config::WB)),
    [](const auto &info) {
        return std::string(appName(std::get<0>(info.param))) + "_" +
               std::string(configName(std::get<1>(info.param)));
    });

TEST(UnsafeRecovery, UnorderedPersistsCanLoseData)
{
    RunSpec spec;
    spec.txns = 6;
    spec.opsPerTxn = 20;
    WorkloadHarness h(AppId::Update, Config::U, spec);
    h.enableAudit();
    h.generate();
    h.simulate();
    const AuditReport report = h.audit();
    ASSERT_GT(report.violations, 0u);

    // Probe crash points throughout the run; with real ordering
    // violations, some durable state should fail to recover to any
    // transaction boundary.
    bool found_inconsistent = false;
    const Cycle total = h.system().core().stats().cycles;
    for (Cycle c = h.setupCompleteCycle();
         c < total && !found_inconsistent; c += 200) {
        const MemoryImage recovered = h.recoveredImageAt(c);
        if (!h.app().checkRecovered(recovered))
            found_inconsistent = true;
    }
    EXPECT_TRUE(found_inconsistent)
        << "expected at least one unrecoverable crash point under U";
}

TEST(RecoveryMechanics, CrashAtEndRecoversToFinalState)
{
    RunSpec spec;
    spec.txns = 3;
    spec.opsPerTxn = 4;
    WorkloadHarness h(AppId::Update, Config::B, spec);
    h.enableAudit();
    h.generate();
    h.simulate();
    const Cycle end = h.system().core().stats().cycles;
    const MemoryImage recovered = h.recoveredImageAt(end);
    // After the last commit everything is durable: the recovered
    // state is exactly the final state.
    EXPECT_TRUE(h.app().checkRecovered(recovered));
    const Addr state = h.framework().logLayout().stateAddr;
    EXPECT_EQ(recovered.read<std::uint64_t>(state), kTxActive);
}

TEST(RecoveryMechanics, CrashBeforeAnyCommitRecoversToSetup)
{
    RunSpec spec;
    spec.txns = 2;
    spec.opsPerTxn = 4;
    WorkloadHarness h(AppId::Update, Config::B, spec);
    h.enableAudit();
    h.generate();
    h.simulate();
    // Right after setup became durable: the initial state.
    const MemoryImage recovered =
        h.recoveredImageAt(h.setupCompleteCycle());
    EXPECT_TRUE(h.app().checkRecovered(recovered));
}

} // namespace
} // namespace ede
