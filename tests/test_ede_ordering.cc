/**
 * @file
 * EDE semantics: execution dependences must be honoured by both
 * hardware realizations (IQ and WB), across every instruction form
 * the extension defines.
 *
 * The standard scenario makes the producer slow (a DC CVAP to a cold
 * NVM line) and the consumer fast (a store to a pre-warmed DRAM
 * line), so that WITHOUT the dependence the consumer completes first.
 * The EnforceMode::None run of the unkeyed trace asserts that
 * baseline inversion; the keyed runs assert the enforced order.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sim_test_util.hh"

namespace ede {
namespace {

/** Warm a DRAM line and quiesce, so later stores to it are fast. */
void
warm(TraceBuilder &b, Addr line)
{
    b.str(1, 2, line, 0xeeee);
    b.dsbSy();
}

struct PairIdx
{
    std::size_t producer;
    std::size_t consumer;
};

/** Producer cvap (def key) -> consumer str (use key). */
PairIdx
emitPair(TraceBuilder &b, Addr slow_nvm, Addr fast_dram, Edk key)
{
    PairIdx p;
    p.producer = b.cvap(2, slow_nvm, {key, 0});
    p.consumer = b.str(3, 4, fast_dram, 1, 0, {0, key});
    return p;
}

class EdeOrderingTest : public ::testing::TestWithParam<EnforceMode>
{
};

TEST_P(EdeOrderingTest, ConsumerWaitsForProducer)
{
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    warm(b, MiniSim::dramLine(0));
    const PairIdx p = emitPair(b, sim.nvmLine(0), MiniSim::dramLine(0),
                               1);
    sim.run(t);
    EXPECT_GE(sim.done(p.consumer), sim.done(p.producer));
}

TEST_P(EdeOrderingTest, ZeroKeyConveysNothing)
{
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    warm(b, MiniSim::dramLine(0));
    const std::size_t pr = b.cvap(2, sim.nvmLine(0), {0, 0});
    const std::size_t co = b.str(3, 4, MiniSim::dramLine(0), 1, 0,
                                 {0, 0});
    sim.run(t);
    // Without keys the fast store completes before the slow persist.
    EXPECT_LT(sim.done(co), sim.done(pr));
}

TEST_P(EdeOrderingTest, ConsumerWithUnproducedKeyDoesNotWait)
{
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    warm(b, MiniSim::dramLine(0));
    const std::size_t pr = b.cvap(2, sim.nvmLine(0), {1, 0});
    // Consumes key 9, which nobody produced: no dependence.
    const std::size_t co = b.str(3, 4, MiniSim::dramLine(0), 1, 0,
                                 {0, 9});
    sim.run(t);
    EXPECT_LT(sim.done(co), sim.done(pr));
}

TEST_P(EdeOrderingTest, KeysCanBeReused)
{
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    warm(b, MiniSim::dramLine(0));
    warm(b, MiniSim::dramLine(1));
    const PairIdx p1 = emitPair(b, sim.nvmLine(0),
                                MiniSim::dramLine(0), 1);
    const PairIdx p2 = emitPair(b, sim.nvmLine(1),
                                MiniSim::dramLine(1), 1);
    sim.run(t);
    EXPECT_GE(sim.done(p1.consumer), sim.done(p1.producer));
    EXPECT_GE(sim.done(p2.consumer), sim.done(p2.producer));
}

TEST_P(EdeOrderingTest, OneProducerManyConsumers)
{
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    warm(b, MiniSim::dramLine(0));
    warm(b, MiniSim::dramLine(1));
    warm(b, MiniSim::dramLine(2));
    const std::size_t pr = b.cvap(2, sim.nvmLine(0), {4, 0});
    const std::size_t c1 = b.str(3, 4, MiniSim::dramLine(0), 1, 0,
                                 {0, 4});
    const std::size_t c2 = b.str(5, 6, MiniSim::dramLine(1), 2, 0,
                                 {0, 4});
    const std::size_t c3 = b.str(7, 8, MiniSim::dramLine(2), 3, 0,
                                 {0, 4});
    sim.run(t);
    EXPECT_GE(sim.done(c1), sim.done(pr));
    EXPECT_GE(sim.done(c2), sim.done(pr));
    EXPECT_GE(sim.done(c3), sim.done(pr));
}

TEST_P(EdeOrderingTest, DistinctKeysAreIndependent)
{
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    warm(b, MiniSim::dramLine(0));
    const std::size_t pr = b.cvap(2, sim.nvmLine(0), {1, 0});
    // Uses a different key: must not wait for the key-1 producer.
    const std::size_t co = b.str(3, 4, MiniSim::dramLine(0), 1, 0,
                                 {0, 2});
    sim.run(t);
    EXPECT_LT(sim.done(co), sim.done(pr));
}

TEST_P(EdeOrderingTest, JoinWaitsForBothProducers)
{
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    warm(b, MiniSim::dramLine(0));
    const std::size_t p1 = b.cvap(2, sim.nvmLine(0), {1, 0});
    const std::size_t p2 = b.cvap(3, sim.nvmLine(1), {2, 0});
    b.join(3, 1, 2);
    const std::size_t co = b.str(4, 5, MiniSim::dramLine(0), 1, 0,
                                 {0, 3});
    sim.run(t);
    EXPECT_GE(sim.done(co), sim.done(p1));
    EXPECT_GE(sim.done(co), sim.done(p2));
}

TEST_P(EdeOrderingTest, WaitKeyHoldsYoungerWork)
{
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    warm(b, MiniSim::dramLine(0));
    const std::size_t pr = b.cvap(2, sim.nvmLine(0), {5, 0});
    b.waitKey(5);
    // Plain (unkeyed) store after WAIT_KEY: its visibility is after
    // retirement, which WAIT_KEY delays past the producer.
    const std::size_t co = b.str(3, 4, MiniSim::dramLine(0), 1);
    sim.run(t);
    EXPECT_GE(sim.done(co), sim.done(pr));
}

TEST_P(EdeOrderingTest, WaitKeyIgnoresOtherKeys)
{
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    warm(b, MiniSim::dramLine(0));
    const std::size_t pr = b.cvap(2, sim.nvmLine(0), {5, 0});
    b.waitKey(6); // Different key: nothing to wait for.
    const std::size_t co = b.str(3, 4, MiniSim::dramLine(0), 1);
    sim.run(t);
    EXPECT_LT(sim.done(co), sim.done(pr));
}

TEST_P(EdeOrderingTest, WaitAllKeysHoldsForEveryProducer)
{
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    warm(b, MiniSim::dramLine(0));
    const std::size_t p1 = b.cvap(2, sim.nvmLine(0), {1, 0});
    const std::size_t p2 = b.cvap(3, sim.nvmLine(1), {7, 0});
    b.waitAllKeys();
    const std::size_t co = b.str(4, 5, MiniSim::dramLine(0), 1);
    sim.run(t);
    EXPECT_GE(sim.done(co), sim.done(p1));
    EXPECT_GE(sim.done(co), sim.done(p2));
}

TEST_P(EdeOrderingTest, EdeLoadVariantGatesAtIssue)
{
    // Section VIII-C: the load variant must be enforced at issue in
    // both designs, because loads observe memory when they execute.
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    warm(b, MiniSim::dramLine(0));
    const std::size_t pr = b.cvap(2, sim.nvmLine(0), {1, 0});
    const std::size_t ld = b.ldr(3, 4, MiniSim::dramLine(0), 0,
                                 {0, 1});
    sim.run(t);
    EXPECT_GE(sim.done(ld), sim.done(pr));
}

TEST_P(EdeOrderingTest, OrderingSurvivesBranchSquash)
{
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    warm(b, MiniSim::dramLine(0));
    const std::size_t pr = b.cvap(2, sim.nvmLine(0), {1, 0});
    // Mispredicted branch between producer and consumer: the EDM
    // speculative state must be repaired and the link re-created.
    b.branchCond("ede.sq", 1, 2, false);
    const std::size_t co = b.str(3, 4, MiniSim::dramLine(0), 1, 0,
                                 {0, 1});
    sim.run(t);
    EXPECT_GE(sim.core->stats().squashes, 1u);
    EXPECT_GE(sim.done(co), sim.done(pr));
}

TEST_P(EdeOrderingTest, ProducerConsumerChains)
{
    // a -> b -> c through different keys.
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    warm(b, MiniSim::dramLine(0));
    const std::size_t p1 = b.cvap(2, sim.nvmLine(0), {1, 0});
    // Middle: consumer of 1, producer of 2.
    const std::size_t mid = b.cvap(3, sim.nvmLine(1), {2, 1});
    const std::size_t last = b.str(4, 5, MiniSim::dramLine(0), 1, 0,
                                   {0, 2});
    sim.run(t);
    EXPECT_GE(sim.done(mid), sim.done(p1));
    EXPECT_GE(sim.done(last), sim.done(mid));
}

TEST_P(EdeOrderingTest, RandomPairsAlwaysOrdered)
{
    // Property sweep: random interleavings of producer/consumer
    // pairs, filler compute and unrelated memory traffic.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        MiniSim sim(GetParam());
        Rng rng(seed);
        Trace t;
        TraceBuilder b(t);
        std::vector<PairIdx> pairs;
        for (int i = 0; i < 12; ++i)
            warm(b, MiniSim::dramLine(i));
        for (int i = 0; i < 12; ++i) {
            const Edk key = static_cast<Edk>(1 + rng.below(15));
            pairs.push_back(emitPair(b, sim.nvmLine(i),
                                     MiniSim::dramLine(i), key));
            const int filler = static_cast<int>(rng.below(6));
            for (int f = 0; f < filler; ++f)
                b.alu(static_cast<RegIndex>(8 + (f % 4)), kZeroReg);
            if (rng.chance(0.3))
                b.ldr(7, 6, MiniSim::dramLine(
                    static_cast<int>(rng.below(12))));
        }
        sim.run(t);
        for (const PairIdx &p : pairs) {
            EXPECT_GE(sim.done(p.consumer), sim.done(p.producer))
                << "seed " << seed;
        }
    }
}

TEST_P(EdeOrderingTest, Figure13CallingConvention)
{
    // Figure 13: X is caller-saved, Y is callee-saved.  The callee
    // overwrites X; the caller's WAIT_KEY(X) after the call makes
    // the caller's consumer wait for BOTH producers of X.  The
    // callee's producer of Y also consumes Y, chaining it behind the
    // caller's producer, so the caller's consumer of Y is ordered
    // behind both.
    constexpr Edk X = 1;
    constexpr Edk Y = 2;
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    warm(b, MiniSim::dramLine(0));
    warm(b, MiniSim::dramLine(1));
    // Caller, before the call (lines #2, #3).
    const std::size_t caller_x = b.cvap(2, sim.nvmLine(0), {X, 0});
    const std::size_t caller_y = b.cvap(3, sim.nvmLine(1), {Y, 0});
    // Callee (lines #9, #10): clobbers X; preserves Y's ordering by
    // being a consumer of Y as well as a producer.
    const std::size_t callee_x = b.cvap(4, sim.nvmLine(2), {X, 0});
    const std::size_t callee_y = b.cvap(5, sim.nvmLine(3), {Y, Y});
    // Caller, after the return (lines #5-#7).
    b.waitKey(X);
    const std::size_t use_x = b.str(6, 7, MiniSim::dramLine(0), 1, 0,
                                    {0, X});
    const std::size_t use_y = b.str(8, 9, MiniSim::dramLine(1), 2, 0,
                                    {0, Y});
    sim.run(t);
    // The consumer of X waits on both its producers (via WAIT_KEY).
    EXPECT_GE(sim.done(use_x), sim.done(caller_x));
    EXPECT_GE(sim.done(use_x), sim.done(callee_x));
    // The consumer of Y waits on both producers of Y (via chaining).
    EXPECT_GE(sim.done(use_y), sim.done(callee_y));
    EXPECT_GE(sim.done(use_y), sim.done(caller_y));
}

INSTANTIATE_TEST_SUITE_P(BothRealizations, EdeOrderingTest,
                         ::testing::Values(EnforceMode::IQ,
                                           EnforceMode::WB),
                         [](const auto &info) {
                             return std::string(enforceModeName(
                                 info.param));
                         });

TEST(EdeTiming, WbOutperformsIqOnFig8Pattern)
{
    // The four-instruction, two-dependence pattern of Figure 8.
    auto build = [](MiniSim &sim) {
        Trace t;
        TraceBuilder b(t);
        warm(b, MiniSim::dramLine(0));
        warm(b, MiniSim::dramLine(1));
        for (int rep = 0; rep < 16; ++rep) {
            emitPair(b, sim.nvmLine(2 * rep), MiniSim::dramLine(0), 1);
            emitPair(b, sim.nvmLine(2 * rep + 1),
                     MiniSim::dramLine(1), 2);
        }
        return t;
    };
    MiniSim iq(EnforceMode::IQ);
    MiniSim wb(EnforceMode::WB);
    const Trace ti = build(iq);
    const Trace tw = build(wb);
    const Cycle iq_cycles = iq.run(ti);
    const Cycle wb_cycles = wb.run(tw);
    EXPECT_LT(wb_cycles, iq_cycles);
}

TEST(EdeTiming, EdeBeatsDsbOnIndependentPersists)
{
    // Figure 3 vs Figure 7: independent log/update pairs serialized
    // by DSB vs linked by EDKs.
    auto build = [](MiniSim &sim, bool use_ede) {
        Trace t;
        TraceBuilder b(t);
        for (int i = 0; i < 16; ++i) {
            const Addr log = sim.nvmLine(2 * i);
            const Addr data = sim.nvmLine(2 * i + 1);
            b.stp(1, 2, 3, log, 7, 8);
            if (use_ede) {
                b.cvap(3, log, {1, 0});
                b.str(4, 5, data, 9, 0, {0, 1});
            } else {
                b.cvap(3, log);
                b.dsbSy();
                b.str(4, 5, data, 9);
            }
            b.cvap(5, data);
        }
        return t;
    };
    MiniSim fenced(EnforceMode::None);
    MiniSim ede_wb(EnforceMode::WB);
    const Trace tf = build(fenced, false);
    const Trace te = build(ede_wb, true);
    const Cycle fenced_cycles = fenced.run(tf);
    const Cycle ede_cycles = ede_wb.run(te);
    EXPECT_LT(ede_cycles, fenced_cycles);
}

} // namespace
} // namespace ede
