/**
 * @file
 * EDK virtualization tests (Section IX-A): linear-scan assignment of
 * physical keys, WAIT_KEY spills, and end-to-end ordering of the
 * lowered program on the simulated core.
 */

#include <gtest/gtest.h>

#include "compiler/edk_alloc.hh"
#include "sim_test_util.hh"

namespace ede {
namespace {

VKeyedInst
producer(VKey v)
{
    VKeyedInst in;
    in.si.op = Op::DcCvap;
    in.si.base = 2;
    in.vdef = v;
    return in;
}

VKeyedInst
consumer(VKey v, Op op = Op::Str)
{
    VKeyedInst in;
    in.si.op = op;
    in.si.src1 = 3;
    in.si.base = 4;
    in.si.size = 8;
    in.vuse = v;
    return in;
}

TEST(EdkAlloc, EmptyProgram)
{
    const EdkAllocResult r = allocateEdks({});
    EXPECT_TRUE(r.code.empty());
    EXPECT_EQ(r.waitKeysInserted, 0u);
}

TEST(EdkAlloc, SinglePairGetsAKey)
{
    const EdkAllocResult r = allocateEdks({producer(100),
                                           consumer(100)});
    ASSERT_EQ(r.code.size(), 2u);
    EXPECT_TRUE(edkIsReal(r.code[0].edkDef));
    EXPECT_EQ(r.code[1].edkUse, r.code[0].edkDef);
    EXPECT_EQ(r.waitKeysInserted, 0u);
    EXPECT_EQ(r.origin[0], 0u);
    EXPECT_EQ(r.origin[1], 1u);
}

TEST(EdkAlloc, DisjointRangesReuseKeys)
{
    // 100 sequential pairs: ranges never overlap, so one physical
    // key serves them all and nothing spills.
    std::vector<VKeyedInst> prog;
    for (VKey v = 1; v <= 100; ++v) {
        prog.push_back(producer(v));
        prog.push_back(consumer(v));
    }
    const EdkAllocResult r = allocateEdks(prog);
    EXPECT_EQ(r.code.size(), 200u);
    EXPECT_EQ(r.waitKeysInserted, 0u);
    EXPECT_EQ(r.fencesInserted, 0u);
    for (std::size_t i = 0; i < r.code.size(); i += 2)
        EXPECT_EQ(r.code[i].edkDef, r.code[i + 1].edkUse);
}

TEST(EdkAlloc, FifteenOverlappingRangesFitExactly)
{
    std::vector<VKeyedInst> prog;
    for (VKey v = 1; v <= 15; ++v)
        prog.push_back(producer(v));
    for (VKey v = 1; v <= 15; ++v)
        prog.push_back(consumer(v));
    const EdkAllocResult r = allocateEdks(prog);
    EXPECT_EQ(r.waitKeysInserted, 0u);
    // All fifteen physical keys are distinct.
    std::set<Edk> used;
    for (int i = 0; i < 15; ++i)
        used.insert(r.code[i].edkDef);
    EXPECT_EQ(used.size(), 15u);
    // Each consumer matches its producer's key.
    for (int i = 0; i < 15; ++i)
        EXPECT_EQ(r.code[15 + i].edkUse, r.code[i].edkDef);
}

TEST(EdkAlloc, SixteenthOverlappingRangeSpillsWithWaitKey)
{
    std::vector<VKeyedInst> prog;
    for (VKey v = 1; v <= 16; ++v)
        prog.push_back(producer(v));
    for (VKey v = 1; v <= 16; ++v)
        prog.push_back(consumer(v));
    const EdkAllocResult r = allocateEdks(prog);
    EXPECT_GE(r.waitKeysInserted, 1u);
    EXPECT_EQ(r.fencesInserted, 0u);
    // One inserted WAIT_KEY.
    std::size_t waits = 0;
    for (const StaticInst &si : r.code)
        waits += (si.op == Op::WaitKey) ? 1 : 0;
    EXPECT_EQ(waits, r.waitKeysInserted);
    // The program grew by exactly the inserted ops.
    EXPECT_EQ(r.code.size(), prog.size() + r.waitKeysInserted);
}

TEST(EdkAlloc, SpilledConsumerDropsToZeroKey)
{
    // The victim's consumer, after eviction, carries the zero key --
    // its ordering is covered by the inserted WAIT_KEY.
    std::vector<VKeyedInst> prog;
    for (VKey v = 1; v <= 16; ++v)
        prog.push_back(producer(v));
    for (VKey v = 1; v <= 16; ++v)
        prog.push_back(consumer(v));
    const EdkAllocResult r = allocateEdks(prog);
    std::size_t zero_consumers = 0;
    for (std::size_t i = 0; i < r.code.size(); ++i) {
        if (r.origin[i] != EdkAllocResult::kInserted &&
            r.code[i].op == Op::Str && !edkIsReal(r.code[i].edkUse)) {
            ++zero_consumers;
        }
    }
    EXPECT_GE(zero_consumers, 1u);
}

TEST(EdkAlloc, LoadConsumersForceFenceFallback)
{
    // Sixteen overlapping ranges whose remaining consumers are all
    // loads: WAIT_KEY cannot cover them (loads observe at execute),
    // so the allocator emits the DSB fallback.
    std::vector<VKeyedInst> prog;
    for (VKey v = 1; v <= 16; ++v)
        prog.push_back(producer(v));
    for (VKey v = 1; v <= 16; ++v)
        prog.push_back(consumer(v, Op::Ldr));
    const EdkAllocResult r = allocateEdks(prog);
    EXPECT_GE(r.fencesInserted, 1u);
}

TEST(EdkAlloc, RedefinitionKeepsItsSlot)
{
    std::vector<VKeyedInst> prog;
    prog.push_back(producer(7));
    prog.push_back(consumer(7));
    prog.push_back(producer(7)); // Redefine while... range reopens.
    prog.push_back(consumer(7));
    const EdkAllocResult r = allocateEdks(prog);
    EXPECT_EQ(r.waitKeysInserted, 0u);
    EXPECT_EQ(r.code[1].edkUse, r.code[0].edkDef);
    EXPECT_EQ(r.code[3].edkUse, r.code[2].edkDef);
}

TEST(EdkAlloc, JoinConsumesTwoVirtualKeys)
{
    std::vector<VKeyedInst> prog;
    prog.push_back(producer(1));
    prog.push_back(producer(2));
    VKeyedInst join;
    join.si.op = Op::Join;
    join.vdef = 3;
    join.vuse = 1;
    join.vuse2 = 2;
    prog.push_back(join);
    prog.push_back(consumer(3));
    const EdkAllocResult r = allocateEdks(prog);
    EXPECT_EQ(r.code[2].edkUse, r.code[0].edkDef);
    EXPECT_EQ(r.code[2].edkUse2, r.code[1].edkDef);
    EXPECT_EQ(r.code[3].edkUse, r.code[2].edkDef);
}

TEST(EdkAlloc, LoweredProgramEnforcesOrderingEndToEnd)
{
    // 30 virtual pairs with overlapping ranges (more than 15 live at
    // once), lowered, attached to addresses and run on the WB core:
    // every consumer must still complete after its producer.
    constexpr int kPairs = 30;
    std::vector<VKeyedInst> prog;
    for (VKey v = 1; v <= kPairs; ++v)
        prog.push_back(producer(v));
    for (VKey v = 1; v <= kPairs; ++v)
        prog.push_back(consumer(v));
    const EdkAllocResult r = allocateEdks(prog);

    MiniSim sim(EnforceMode::WB);
    Trace t;
    TraceBuilder b(t);
    // Warm consumer lines.
    for (int i = 0; i < kPairs; ++i)
        b.str(1, 2, MiniSim::dramLine(i), 0);
    b.dsbSy();

    std::vector<std::size_t> prod_idx(kPairs + 1);
    std::vector<std::size_t> cons_idx(kPairs + 1);
    int nprod = 0;
    int ncons = 0;
    for (std::size_t i = 0; i < r.code.size(); ++i) {
        const StaticInst &si = r.code[i];
        if (si.op == Op::DcCvap) {
            prod_idx[++nprod] = b.cvap(si.base, sim.nvmLine(nprod),
                                       {si.edkDef, si.edkUse});
        } else if (si.op == Op::Str) {
            ++ncons;
            cons_idx[ncons] =
                b.str(si.src1, si.base, MiniSim::dramLine(ncons - 1),
                      1, 0, {si.edkDef, si.edkUse});
        } else if (si.op == Op::WaitKey) {
            b.waitKey(si.edkUse);
        } else {
            FAIL() << "unexpected op in lowered code";
        }
    }
    sim.run(t);
    for (int p = 1; p <= kPairs; ++p) {
        EXPECT_GE(sim.done(cons_idx[p]), sim.done(prod_idx[p]))
            << "pair " << p;
    }
}

TEST(EdkAllocDeath, UnknownConsumerIsRejected)
{
    // A consumer of a virtual key that was never produced (and never
    // evicted) indicates broken IR.
    EXPECT_DEATH(allocateEdks({consumer(9)}), "unknown virtual key");
}

} // namespace
} // namespace ede
