/**
 * @file
 * Runtime EDK stall-analyzer tests: a forged forward srcID link (the
 * corruption a soft error in the EDM would produce) must be reported
 * as an EdkDependenceCycle in IQ mode, survived with a synthesized
 * fence under EdkRecoveryMode::Degrade, and neutralized outright by
 * the WB design's insertion-time CAM check.  A long-latency NVM media
 * write that merely *looks* wedged must be classified as an external
 * stall, never as a cycle.
 */

#include <gtest/gtest.h>

#include "sim_test_util.hh"

namespace ede {
namespace {

/** Analyzer windows sized for unit-test traces. */
CoreParams
detectorParams(EdkRecoveryMode rec, Cycle stall_cycles = 2'000)
{
    CoreParams p;
    p.edkRecoveryMode = rec;
    p.edkStallCycles = stall_cycles;
    p.watchdogCycles = 100'000;
    return p;
}

/**
 * The fault gadget from the fuzz campaign: producer X (str def k)
 * gets its consumer link forged to point *forward* at adjacent
 * consumer Y (str use k), closing a genuine dependence cycle.  The
 * dependent multiplies delay X's issue until Y has dispatched, so
 * the forged link resolves against a live instruction.
 * @return {X trace index, Y trace index}.
 */
std::pair<std::size_t, std::size_t>
buildForgedCycle(MiniSim &sim, Trace &t)
{
    TraceBuilder b(t);
    for (int i = 0; i < 3; ++i)
        b.str(8, 2, MiniSim::dramLine(i), i);
    b.movImm(10, 3);
    b.mul(11, 10, 10);
    b.mul(12, 11, 11);
    const std::size_t x = b.str(12, 2, sim.nvmLine(0), 1, 0, {4, 0});
    const std::size_t y = b.str(13, 2, MiniSim::dramLine(3), 2, 0,
                                {0, 4});
    for (int i = 0; i < 3; ++i)
        b.str(14, 2, MiniSim::dramLine(4 + i), i);
    sim.core->corruptEdeLink(x, 1);
    return {x, y};
}

TEST(EdkDetector, IqReportsForgedCycleWithChain)
{
    MiniSim sim(EnforceMode::IQ,
                detectorParams(EdkRecoveryMode::Report));
    Trace t;
    const auto [x, y] = buildForgedCycle(sim, t);
    sim.run(t);

    const SimError &err = sim.core->simError();
    ASSERT_EQ(err.kind, SimErrorKind::EdkDependenceCycle)
        << err.describe();
    EXPECT_GE(sim.core->stats().edkStuckDetected, 1u);
    EXPECT_EQ(sim.core->stats().edkFencesSynthesized, 0u);

    // The chain names both gadget members.
    bool saw_x = false, saw_y = false;
    for (const EdkChainNode &n : err.edkChain) {
        saw_x |= n.traceIdx == x;
        saw_y |= n.traceIdx == y;
    }
    EXPECT_TRUE(saw_x && saw_y) << err.describe();

    // Reported one analyzer window after progress stopped, far
    // before the watchdog would have fired.
    EXPECT_LT(err.cycle, err.lastProgressCycle + 100'000);
}

TEST(EdkDetector, DegradeSynthesizesFenceAndCompletes)
{
    MiniSim sim(EnforceMode::IQ,
                detectorParams(EdkRecoveryMode::Degrade));
    Trace t;
    const auto [x, y] = buildForgedCycle(sim, t);
    sim.run(t);

    EXPECT_EQ(sim.core->simError().kind, SimErrorKind::None)
        << sim.core->simError().describe();
    EXPECT_EQ(sim.core->stats().retired, t.size());
    EXPECT_GE(sim.core->stats().edkStuckDetected, 1u);
    EXPECT_GE(sim.core->stats().edkFencesSynthesized, 1u);
    // Only the forged link is released; the genuine key-4 dependence
    // still orders Y after X.
    EXPECT_GE(sim.done(y), sim.done(x));
}

TEST(EdkDetector, WbCamCheckNeutralizesForgedLink)
{
    // In the WB design srcID tags are re-checked against the write
    // buffer at insertion; a forged tag whose producer is not
    // resident is cleared, so the cycle never forms.
    MiniSim sim(EnforceMode::WB,
                detectorParams(EdkRecoveryMode::Report));
    Trace t;
    const auto [x, y] = buildForgedCycle(sim, t);
    sim.run(t);

    EXPECT_EQ(sim.core->simError().kind, SimErrorKind::None)
        << sim.core->simError().describe();
    EXPECT_EQ(sim.core->stats().retired, t.size());
    EXPECT_EQ(sim.core->stats().edkStuckDetected, 0u);
    EXPECT_GE(sim.done(y), sim.done(x));
}

class EdkDetectorModes : public ::testing::TestWithParam<EnforceMode>
{
};

TEST_P(EdkDetectorModes, NvmMediaWriteStallIsNotACycle)
{
    // A two-slot on-DIMM buffer forces the key producer to wait a
    // full ~1500-cycle (500 ns) media write for a free slot.  The
    // analyzer window is far smaller, so it runs several times during
    // the stall -- and must classify it as external every time, not
    // abort the run as a dependence cycle.
    MemSystemParams mp;
    mp.nvm.bufferSlots = 2;
    MiniSim sim(GetParam(),
                detectorParams(EdkRecoveryMode::Report, 200), mp);
    Trace t;
    TraceBuilder b(t);
    b.str(8, 2, MiniSim::dramLine(0), 0);
    b.dsbSy();
    // Distinct 256 B media lines (nvmLine steps by 64), so the
    // cleans cannot coalesce and must each take a buffer slot.
    for (int i = 0; i < 4; ++i)
        b.cvap(2, sim.nvmLine(4 * i));   // Fill both buffer slots.
    const std::size_t pr = b.cvap(2, sim.nvmLine(20), {3, 0});
    const std::size_t co = b.str(9, 2, MiniSim::dramLine(1), 7, 0,
                                 {0, 3});
    b.waitKey(3);
    sim.run(t);

    EXPECT_EQ(sim.core->simError().kind, SimErrorKind::None)
        << sim.core->simError().describe();
    EXPECT_EQ(sim.core->stats().retired, t.size());
    EXPECT_GE(sim.core->stats().edkStallChecks, 1u);
    EXPECT_GE(sim.core->stats().edkExternalStalls, 1u);
    EXPECT_EQ(sim.core->stats().edkStuckDetected, 0u);
    EXPECT_EQ(sim.core->stats().edkFencesSynthesized, 0u);
    EXPECT_GE(sim.done(co), sim.done(pr));
}

TEST_P(EdkDetectorModes, WaitWithYoungerGatedLoadDoesNotDeadlock)
{
    // Regression for a dispatch-time WAIT-counter bug the fuzz
    // campaign exposed: EDE-gated loads were counted at dispatch, so
    // a WAIT_ALL_KEYS at the ROB head waited on the counter a
    // younger load held, while that load's producer store could not
    // complete because it could not retire past the blocked WAIT.
    // Counters must track only the post-retirement window.
    MiniSim sim(GetParam(), detectorParams(EdkRecoveryMode::Report));
    Trace t;
    TraceBuilder b(t);
    b.str(8, 2, MiniSim::dramLine(0), 0);
    b.dsbSy();
    b.cvap(2, sim.nvmLine(0), {1, 0});
    b.waitAllKeys();
    const std::size_t pr = b.str(9, 2, MiniSim::dramLine(1), 7, 0,
                                 {2, 0});
    const std::size_t co = b.ldr(10, 2, MiniSim::dramLine(1), 0,
                                 {0, 2});
    b.str(11, 2, MiniSim::dramLine(2), 9);
    sim.run(t);

    EXPECT_EQ(sim.core->simError().kind, SimErrorKind::None)
        << sim.core->simError().describe();
    EXPECT_EQ(sim.core->stats().retired, t.size());
    EXPECT_EQ(sim.core->stats().edkStuckDetected, 0u);
    EXPECT_GE(sim.done(co), sim.done(pr));
}

INSTANTIATE_TEST_SUITE_P(BothRealizations, EdkDetectorModes,
                         ::testing::Values(EnforceMode::IQ,
                                           EnforceMode::WB),
                         [](const auto &info) {
                             return std::string(enforceModeName(
                                 info.param));
                         });

} // namespace
} // namespace ede
