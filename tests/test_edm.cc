/**
 * @file
 * Unit tests for the Execution Dependence Map and the WAIT counters.
 */

#include <gtest/gtest.h>

#include "core/edm.hh"
#include "core/wait_counters.hh"

namespace ede {
namespace {

TEST(EdmMap, EmptyByDefault)
{
    EdmMap m;
    EXPECT_TRUE(m.empty());
    for (Edk k = 0; k < kNumEdks; ++k)
        EXPECT_EQ(m.lookup(k), kNoSeq);
}

TEST(EdmMap, DefineAndLookup)
{
    EdmMap m;
    m.define(3, 100);
    EXPECT_EQ(m.lookup(3), 100u);
    EXPECT_EQ(m.lookup(4), kNoSeq);
    EXPECT_FALSE(m.empty());
}

TEST(EdmMap, ZeroKeyIsInert)
{
    EdmMap m;
    m.define(kZeroEdk, 55);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.lookup(kZeroEdk), kNoSeq);
}

TEST(EdmMap, RedefinitionOverwrites)
{
    EdmMap m;
    m.define(1, 10);
    m.define(1, 20);
    EXPECT_EQ(m.lookup(1), 20u);
}

TEST(EdmMap, ClearOnlyOnIdMatch)
{
    EdmMap m;
    m.define(1, 10);
    // A stale completion (entry was overwritten) must not clear.
    EXPECT_FALSE(m.clearIfMatch(1, 9));
    EXPECT_EQ(m.lookup(1), 10u);
    EXPECT_TRUE(m.clearIfMatch(1, 10));
    EXPECT_EQ(m.lookup(1), kNoSeq);
}

TEST(Edm, SpecAndNonspecAreIndependent)
{
    Edm edm;
    edm.specDefine(2, 7);
    EXPECT_EQ(edm.specLookup(2), 7u);
    EXPECT_EQ(edm.nonspec().lookup(2), kNoSeq);
    edm.retireDefine(2, 7);
    EXPECT_EQ(edm.nonspec().lookup(2), 7u);
}

TEST(Edm, CompletionClearsBothCopies)
{
    Edm edm;
    edm.specDefine(5, 42);
    edm.retireDefine(5, 42);
    edm.complete(5, 42);
    EXPECT_EQ(edm.specLookup(5), kNoSeq);
    EXPECT_EQ(edm.nonspec().lookup(5), kNoSeq);
}

TEST(Edm, SquashRestoreCopiesNonspec)
{
    Edm edm;
    edm.specDefine(1, 10);  // Retired producer.
    edm.retireDefine(1, 10);
    edm.specDefine(1, 99);  // Squashed speculative redefinition.
    edm.specDefine(2, 98);  // Squashed definition of another key.
    edm.squashRestore({});
    EXPECT_EQ(edm.specLookup(1), 10u);
    EXPECT_EQ(edm.specLookup(2), kNoSeq);
}

TEST(Edm, SquashRestoreReplaysSurvivors)
{
    Edm edm;
    edm.retireDefine(1, 10);
    // Surviving unretired producers, in program order: the younger
    // definition of key 1 must win.
    edm.squashRestore({{1, 12}, {3, 13}, {1, 14}});
    EXPECT_EQ(edm.specLookup(1), 14u);
    EXPECT_EQ(edm.specLookup(3), 13u);
}

TEST(Edm, BackToBackSquashRestores)
{
    // Two squashes in close succession: the first replays an
    // in-flight survivor definition; by the second that definition
    // has itself been squashed, so the restore must fall back to the
    // retired producer alone.  The non-speculative copy is never
    // touched by recovery.
    Edm edm;
    edm.specDefine(1, 10);
    edm.retireDefine(1, 10);    // Retired producer of key 1.
    edm.specDefine(2, 20);      // In-flight producer of key 2.

    edm.squashRestore({{2, 20}});  // Key 2's def survives squash #1.
    EXPECT_EQ(edm.specLookup(1), 10u);
    EXPECT_EQ(edm.specLookup(2), 20u);

    edm.squashRestore({});         // Squash #2 kills it too.
    EXPECT_EQ(edm.specLookup(1), 10u);
    EXPECT_EQ(edm.specLookup(2), kNoSeq);
    EXPECT_EQ(edm.nonspec().lookup(1), 10u);
    EXPECT_EQ(edm.nonspec().lookup(2), kNoSeq);
}

TEST(Edm, SurvivorCompletingBetweenSquashesClearsBothCopies)
{
    // A survivor replayed by squash #1 then completes; the clear must
    // land in both copies so squash #2 does not resurrect the link.
    Edm edm;
    edm.retireDefine(3, 30);
    edm.squashRestore({{3, 32}});  // Younger survivor wins the slot.
    EXPECT_EQ(edm.specLookup(3), 32u);

    edm.retireDefine(3, 32);       // Survivor retires...
    edm.complete(3, 32);           // ...and completes.
    EXPECT_EQ(edm.specLookup(3), kNoSeq);
    EXPECT_EQ(edm.nonspec().lookup(3), kNoSeq);

    edm.squashRestore({});
    EXPECT_EQ(edm.specLookup(3), kNoSeq);
}

TEST(Edm, ResetClearsEverything)
{
    Edm edm;
    edm.specDefine(1, 1);
    edm.retireDefine(2, 2);
    edm.reset();
    EXPECT_TRUE(edm.spec().empty());
    EXPECT_TRUE(edm.nonspec().empty());
}

StaticInst
edeStore(Edk def, Edk use)
{
    StaticInst si;
    si.op = Op::Str;
    si.edkDef = def;
    si.edkUse = use;
    return si;
}

TEST(WaitCounters, StartsClear)
{
    WaitCounters c;
    EXPECT_TRUE(c.allClear());
    for (Edk k = 1; k < kNumEdks; ++k)
        EXPECT_TRUE(c.keyClear(k));
}

TEST(WaitCounters, TracksPerKeyAndGlobal)
{
    WaitCounters c;
    c.enter(edeStore(1, 0));
    c.enter(edeStore(0, 2));
    EXPECT_FALSE(c.keyClear(1));
    EXPECT_FALSE(c.keyClear(2));
    EXPECT_TRUE(c.keyClear(3));
    EXPECT_FALSE(c.allClear());
    c.exit(edeStore(1, 0));
    EXPECT_TRUE(c.keyClear(1));
    EXPECT_FALSE(c.allClear());
    c.exit(edeStore(0, 2));
    EXPECT_TRUE(c.allClear());
}

TEST(WaitCounters, InstructionWithBothKeysCountsBoth)
{
    WaitCounters c;
    c.enter(edeStore(3, 4));
    EXPECT_FALSE(c.keyClear(3));
    EXPECT_FALSE(c.keyClear(4));
    c.exit(edeStore(3, 4));
    EXPECT_TRUE(c.keyClear(3));
    EXPECT_TRUE(c.keyClear(4));
    EXPECT_TRUE(c.allClear());
}

TEST(WaitCounters, NonEdeInstructionsIgnored)
{
    WaitCounters c;
    c.enter(edeStore(0, 0));
    EXPECT_TRUE(c.allClear());
}

TEST(WaitCounters, JoinCountsAllThreeKeys)
{
    StaticInst join;
    join.op = Op::Join;
    join.edkDef = 1;
    join.edkUse = 2;
    join.edkUse2 = 3;
    WaitCounters c;
    c.enter(join);
    EXPECT_FALSE(c.keyClear(1));
    EXPECT_FALSE(c.keyClear(2));
    EXPECT_FALSE(c.keyClear(3));
    c.exit(join);
    EXPECT_TRUE(c.allClear());
}

TEST(WaitCounters, ZeroKeyFieldAlwaysClear)
{
    WaitCounters c;
    c.enter(edeStore(1, 0));
    EXPECT_TRUE(c.keyClear(kZeroEdk));
}

TEST(WaitCounters, ResetClears)
{
    WaitCounters c;
    c.enter(edeStore(1, 2));
    c.reset();
    EXPECT_TRUE(c.allClear());
    EXPECT_TRUE(c.keyClear(1));
}

} // namespace
} // namespace ede
