/**
 * @file
 * Tests for the experiment-orchestration layer (src/exp): scheduler
 * ordering and failure propagation, fingerprint sensitivity, result
 * cache hit/miss/corruption behaviour, keyed cell lookup, and the
 * determinism guarantee that parallel runs are bit-identical to
 * serial ones for every app x config cell (sweeps and the fault
 * campaign alike).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "exp/fingerprint.hh"
#include "exp/result_cache.hh"
#include "exp/runner.hh"
#include "exp/scheduler.hh"
#include "fault/campaign.hh"

namespace ede {
namespace {

using exp::ExperimentCell;
using exp::ExperimentPlan;
using exp::ExperimentPoint;
using exp::ExperimentResults;
using exp::ResultCache;
using exp::RunnerOptions;
using exp::Scheduler;

RunSpec
tiny()
{
    RunSpec spec;
    spec.txns = 2;
    spec.opsPerTxn = 4;
    return spec;
}

/** A scratch directory under the build tree, wiped per use. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = "exp_test_scratch/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

// ---------------------------------------------------------------- //
// Scheduler
// ---------------------------------------------------------------- //

TEST(Scheduler, MapCollectsResultsInIndexOrder)
{
    const Scheduler sched(4);
    const std::vector<std::uint64_t> out =
        sched.map<std::uint64_t>(64, [](std::size_t i) {
            if (i % 7 == 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
            return static_cast<std::uint64_t>(i * i);
        });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(Scheduler, SingleJobRunsInlineOnCallingThread)
{
    const Scheduler sched(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(8);
    sched.parallelFor(8, [&](std::size_t i) {
        seen[i] = std::this_thread::get_id();
    });
    for (const std::thread::id &id : seen)
        EXPECT_EQ(id, caller);
}

TEST(Scheduler, ZeroJobsResolvesToHardwareConcurrency)
{
    EXPECT_EQ(Scheduler(0).jobs(), Scheduler::hardwareJobs());
    EXPECT_GE(Scheduler::hardwareJobs(), 1u);
}

TEST(Scheduler, PropagatesJobFailure)
{
    for (unsigned jobs : {1u, 4u}) {
        const Scheduler sched(jobs);
        EXPECT_THROW(
            sched.parallelFor(16,
                              [](std::size_t i) {
                                  if (i == 5) {
                                      throw std::runtime_error(
                                          "job 5 failed");
                                  }
                              }),
            std::runtime_error);
    }
}

TEST(Scheduler, SerialFailureIsFirstInIndexOrder)
{
    const Scheduler sched(1);
    try {
        sched.parallelFor(16, [](std::size_t i) {
            if (i == 3)
                throw std::runtime_error("first");
            if (i == 7)
                throw std::runtime_error("second");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(Scheduler, StopsStartingNewJobsAfterFailure)
{
    const Scheduler sched(2);
    std::atomic<int> started{0};
    EXPECT_THROW(sched.parallelFor(1000,
                                   [&](std::size_t) {
                                       started.fetch_add(1);
                                       throw std::runtime_error("x");
                                   }),
                 std::runtime_error);
    // Both workers can have one job in flight, but the remaining
    // ~998 must never start.
    EXPECT_LE(started.load(), 4);
}

// ---------------------------------------------------------------- //
// Fingerprints
// ---------------------------------------------------------------- //

ExperimentPoint
basePoint()
{
    ExperimentPoint p;
    p.app = AppId::Update;
    p.config = Config::WB;
    p.spec = tiny();
    p.simParams = makeParams(Config::WB);
    return p;
}

TEST(Fingerprint, StableForIdenticalPoints)
{
    EXPECT_EQ(exp::fingerprintPoint(basePoint()),
              exp::fingerprintPoint(basePoint()));
}

TEST(Fingerprint, ChangesWithEveryInputAxis)
{
    const std::uint64_t base = exp::fingerprintPoint(basePoint());

    ExperimentPoint p = basePoint();
    p.app = AppId::Swap;
    EXPECT_NE(exp::fingerprintPoint(p), base);

    p = basePoint();
    p.config = Config::B;
    p.simParams = makeParams(Config::B);
    EXPECT_NE(exp::fingerprintPoint(p), base);

    p = basePoint();
    p.spec.seed = 43;
    EXPECT_NE(exp::fingerprintPoint(p), base);

    p = basePoint();
    p.spec.opsPerTxn += 1;
    EXPECT_NE(exp::fingerprintPoint(p), base);

    p = basePoint();
    p.appParams.arrayLen = 8192;
    EXPECT_NE(exp::fingerprintPoint(p), base);

    p = basePoint();
    p.simParams.core.wbSize = 32;
    EXPECT_NE(exp::fingerprintPoint(p), base);

    p = basePoint();
    p.simParams.mem.nvm.writeLatency = 900;
    EXPECT_NE(exp::fingerprintPoint(p), base);

    // The label is presentation only: it must NOT affect the
    // fingerprint, or axis defaults would never dedupe.
    p = basePoint();
    p.label = "some-other-label";
    EXPECT_EQ(exp::fingerprintPoint(p), base);
}

TEST(Fingerprint, ConcAxesAreDistinctAndGatedOnConc)
{
    // The conc fields are hashed only when the point is a
    // concurrent-kernel cell, so every pre-existing single-app
    // fingerprint (and its cached snapshot) stays valid.
    const std::uint64_t base = exp::fingerprintPoint(basePoint());

    ExperimentPoint p = basePoint();
    p.concApp = ConcApp::RwLock;
    p.concOpsPerCore = 999;
    p.concSeed = 77;
    EXPECT_EQ(exp::fingerprintPoint(p), base)
        << "conc fields leaked into a non-conc fingerprint";

    p = basePoint();
    p.conc = true;
    const std::uint64_t conc = exp::fingerprintPoint(p);
    EXPECT_NE(conc, base);

    ExperimentPoint q = p;
    q.concApp = ConcApp::RwLock;
    EXPECT_NE(exp::fingerprintPoint(q), conc);

    q = p;
    q.concOpsPerCore += 1;
    EXPECT_NE(exp::fingerprintPoint(q), conc);

    q = p;
    q.concSeed += 1;
    EXPECT_NE(exp::fingerprintPoint(q), conc);

    q = p;
    q.simParams.coreCount = 4;
    EXPECT_NE(exp::fingerprintPoint(q), conc);
}

// ---------------------------------------------------------------- //
// Result cache
// ---------------------------------------------------------------- //

/** Simulate one real cell so snapshots carry non-trivial stats. */
ExperimentCell
simulatedCell()
{
    ExperimentPlan plan;
    plan.addCell(AppId::Update, Config::WB, tiny());
    RunnerOptions opt;
    opt.jobs = 1;
    opt.printSummary = false;
    const ExperimentResults results = exp::runPlan(plan, opt);
    return results.cells().front();
}

TEST(ResultCacheTest, RoundTripsACell)
{
    const ExperimentCell cell = simulatedCell();
    const ResultCache cache(scratchDir("roundtrip"));
    cache.store(cell);

    const auto hit = cache.load(cell.point, cell.fingerprint);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->fromCache);
    EXPECT_EQ(hit->opCycles, cell.opCycles);
    // serializeCell covers every persisted statistic, so equality of
    // the serialization is equality of the snapshot.
    EXPECT_EQ(exp::serializeCell(*hit), exp::serializeCell(cell));
    EXPECT_GT(hit->result.core.issueHist.totalSamples(), 0u);
    EXPECT_EQ(hit->result.nvmOccupancy.totalSamples(),
              cell.result.nvmOccupancy.totalSamples());
}

TEST(ResultCacheTest, MissesOnUnknownFingerprint)
{
    const ExperimentCell cell = simulatedCell();
    const ResultCache cache(scratchDir("miss"));
    cache.store(cell);
    EXPECT_FALSE(
        cache.load(cell.point, cell.fingerprint ^ 1).has_value());
}

TEST(ResultCacheTest, MissesWhenFingerprintInputsChange)
{
    const ExperimentCell cell = simulatedCell();
    const ResultCache cache(scratchDir("invalidate"));
    cache.store(cell);

    ExperimentPoint tweaked = cell.point;
    tweaked.simParams.core.wbSize = 32;
    const std::uint64_t new_fp = exp::fingerprintPoint(tweaked);
    EXPECT_NE(new_fp, cell.fingerprint);
    EXPECT_FALSE(cache.load(tweaked, new_fp).has_value());
}

TEST(ResultCacheTest, TreatsCorruptSnapshotsAsMisses)
{
    const ExperimentCell cell = simulatedCell();
    const std::string dir = scratchDir("corrupt");
    const ResultCache cache(dir);
    cache.store(cell);

    // Truncate / scribble over the snapshot file.
    const std::string path =
        dir + "/" + exp::fingerprintHex(cell.fingerprint) + ".snapshot";
    ASSERT_TRUE(std::filesystem::exists(path));
    std::ofstream(path, std::ios::trunc) << "not a snapshot";
    EXPECT_FALSE(cache.load(cell.point, cell.fingerprint).has_value());
}

TEST(ResultCacheTest, RoundTripsAMultiCoreConcCell)
{
    // Multi-core snapshots append a perCore section; the restored
    // cell must carry every core's counters, not just the core-0
    // aggregates the single-core format persists.
    ExperimentPoint p;
    p.label = "conc-cell";
    p.config = Config::IQ;
    p.simParams = makeParams(Config::IQ);
    p.simParams.coreCount = 2;
    p.conc = true;
    p.concApp = ConcApp::MsQueue;
    p.concOpsPerCore = 8;
    p.concSeed = 42;

    ExperimentPlan plan;
    plan.add(p);
    RunnerOptions opt;
    opt.jobs = 1;
    opt.printSummary = false;
    const ExperimentResults fresh = exp::runPlan(plan, opt);
    const ExperimentCell &cell = fresh.cells().front();
    ASSERT_EQ(cell.result.coreCount, 2);
    ASSERT_EQ(cell.result.perCore.size(), 2u);

    const ResultCache cache(scratchDir("conc_cell"));
    cache.store(cell);
    const auto hit = cache.load(cell.point, cell.fingerprint);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->fromCache);
    ASSERT_EQ(hit->result.perCore.size(), 2u);
    for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_EQ(hit->result.perCore[c].core,
                  cell.result.perCore[c].core);
        EXPECT_EQ(hit->result.perCore[c].stats.cycles,
                  cell.result.perCore[c].stats.cycles);
        EXPECT_EQ(hit->result.perCore[c].stats.retired,
                  cell.result.perCore[c].stats.retired);
        EXPECT_EQ(hit->result.perCore[c].wb.pushes,
                  cell.result.perCore[c].wb.pushes);
        EXPECT_EQ(hit->result.perCore[c].l1d.misses,
                  cell.result.perCore[c].l1d.misses);
    }
    EXPECT_EQ(hit->result.coherence.snoops,
              cell.result.coherence.snoops);
    // serializeCell covers the whole persisted snapshot.
    EXPECT_EQ(exp::serializeCell(*hit), exp::serializeCell(cell));
}

TEST(ResultCacheTest, RejectsSnapshotForDifferentPoint)
{
    const ExperimentCell cell = simulatedCell();
    // Same fingerprint claimed for a different app: the stored app
    // name no longer matches, so the snapshot must not be trusted.
    ExperimentPoint other = cell.point;
    other.app = AppId::Swap;
    const auto rejected = exp::deserializeCell(
        exp::serializeCell(cell), other, cell.fingerprint);
    EXPECT_FALSE(rejected.has_value());
}

// ---------------------------------------------------------------- //
// Runner + keyed results
// ---------------------------------------------------------------- //

TEST(Runner, SecondRunIsAllCacheHits)
{
    ExperimentPlan plan;
    plan.addGrid({AppId::Update, AppId::Swap},
                 {Config::B, Config::WB}, tiny());
    RunnerOptions opt;
    opt.jobs = 2;
    opt.cacheDir = scratchDir("runner");
    opt.printSummary = false;

    const ExperimentResults cold = exp::runPlan(plan, opt);
    EXPECT_EQ(cold.simulated(), 4u);
    EXPECT_EQ(cold.cacheHits(), 0u);

    const ExperimentResults warm = exp::runPlan(plan, opt);
    EXPECT_EQ(warm.simulated(), 0u);
    EXPECT_EQ(warm.cacheHits(), 4u);
    for (std::size_t i = 0; i < warm.size(); ++i) {
        EXPECT_EQ(exp::serializeCell(warm.cells()[i]),
                  exp::serializeCell(cold.cells()[i]));
    }
}

TEST(Runner, ParallelRunIsBitIdenticalToSerial)
{
    ExperimentPlan plan;
    plan.addGrid({AppId::Update, AppId::Btree},
                 {kAllConfigs.begin(), kAllConfigs.end()}, tiny());

    RunnerOptions serial;
    serial.jobs = 1;
    serial.printSummary = false;
    RunnerOptions parallel = serial;
    parallel.jobs = 8;

    const ExperimentResults a = exp::runPlan(plan, serial);
    const ExperimentResults b = exp::runPlan(plan, parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // Serialization covers cycles, op-phase cycles and every
        // statistic including the issue histogram and the NVM
        // occupancy distribution.
        EXPECT_EQ(exp::serializeCell(a.cells()[i]),
                  exp::serializeCell(b.cells()[i]))
            << "cell " << a.cells()[i].point.label;
    }
}

TEST(Results, KeyedLookupFindsEveryPlannedCell)
{
    ExperimentPlan plan;
    plan.addGrid({AppId::Update}, {Config::B, Config::U}, tiny());
    RunnerOptions opt;
    opt.jobs = 1;
    opt.printSummary = false;
    const ExperimentResults results = exp::runPlan(plan, opt);

    EXPECT_EQ(results.cell(AppId::Update, Config::B).point.config,
              Config::B);
    EXPECT_EQ(results.cellByLabel("update/U").point.config, Config::U);
    EXPECT_NE(results.find(AppId::Update, Config::U), nullptr);
    EXPECT_EQ(results.find(AppId::Update, Config::WB), nullptr);
    EXPECT_EQ(results.findByLabel("swap/B"), nullptr);
}

TEST(ResultsDeathTest, MissingCellFailsWithClearMessage)
{
    ExperimentPlan plan;
    plan.addCell(AppId::Update, Config::B, tiny());
    RunnerOptions opt;
    opt.jobs = 1;
    opt.printSummary = false;
    const ExperimentResults results = exp::runPlan(plan, opt);

    EXPECT_EXIT(results.cell(AppId::Rtree, Config::WB),
                ::testing::ExitedWithCode(1),
                "no cell for app 'rtree' config 'WB'");
    EXPECT_EXIT(results.cellByLabel("nope"),
                ::testing::ExitedWithCode(1), "no cell labeled 'nope'");
}

// ---------------------------------------------------------------- //
// Log job tags
// ---------------------------------------------------------------- //

TEST(Logging, JobTagPrefixesAndNests)
{
    EXPECT_EQ(logJobTag(), "");
    {
        LogJobTag outer("outer");
        EXPECT_EQ(logJobTag(), "outer");
        testing::internal::CaptureStderr();
        ede_warn("tagged line");
        EXPECT_NE(testing::internal::GetCapturedStderr().find(
                      "warn: [outer] tagged line"),
                  std::string::npos);
        {
            LogJobTag inner("inner");
            EXPECT_EQ(logJobTag(), "inner");
        }
        EXPECT_EQ(logJobTag(), "outer");
    }
    EXPECT_EQ(logJobTag(), "");
    testing::internal::CaptureStderr();
    ede_warn("untagged line");
    EXPECT_NE(testing::internal::GetCapturedStderr().find(
                  "warn: untagged line"),
              std::string::npos);
}

TEST(Logging, TagIsPerThread)
{
    const LogJobTag tag("main-thread");
    std::string other;
    std::thread t([&] { other = logJobTag(); });
    t.join();
    EXPECT_EQ(other, "");
    EXPECT_EQ(logJobTag(), "main-thread");
}

// ---------------------------------------------------------------- //
// Fault campaign through the scheduler
// ---------------------------------------------------------------- //

TEST(Scheduler, KeepGoingRunsEveryJobAndCollectsAllErrors)
{
    for (unsigned jobs : {1u, 4u}) {
        const Scheduler sched(jobs);
        std::vector<std::atomic<int>> ran(16);
        const exp::RunReport report = sched.run(
            16,
            [&](std::size_t i) {
                ran[i].fetch_add(1);
                if (i % 5 == 0)
                    throw std::runtime_error("job failed");
            },
            exp::FailureMode::KeepGoing);

        for (const std::atomic<int> &r : ran)
            EXPECT_EQ(r.load(), 1);
        ASSERT_EQ(report.errors.size(), 4u);  // 0, 5, 10, 15.
        for (std::size_t k = 0; k < report.errors.size(); ++k)
            EXPECT_EQ(report.errors[k].index, k * 5);
        EXPECT_EQ(report.completed.size(), 12u);
        EXPECT_TRUE(std::is_sorted(report.completed.begin(),
                                   report.completed.end()));
        EXPECT_FALSE(report.ok());
    }
}

TEST(Scheduler, StopOnFirstErrorSurfacesCompletedIndices)
{
    // The satellite fix: a first-throw run no longer discards the
    // work that *did* finish -- the report names every completed
    // index alongside the error.
    const Scheduler sched(1);
    const exp::RunReport report = sched.run(
        8,
        [](std::size_t i) {
            if (i == 3)
                throw std::runtime_error("boom");
        },
        exp::FailureMode::StopOnFirstError);
    ASSERT_EQ(report.errors.size(), 1u);
    EXPECT_EQ(report.errors[0].index, 3u);
    EXPECT_EQ(report.completed,
              (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ResultCacheTest, SweepsStaleTempFilesAtOpen)
{
    // The satellite fix: a writer that died between temp-file create
    // and rename used to leak `*.tmp.*` files forever; opening the
    // cache now sweeps them.
    const std::string dir = scratchDir("tmpsweep");
    std::filesystem::create_directories(dir);
    const std::string stale =
        dir + "/0123456789abcdef.snapshot.tmp.12345";
    std::ofstream(stale) << "orphaned partial write";
    ASSERT_TRUE(std::filesystem::exists(stale));

    const ResultCache cache(dir);
    EXPECT_FALSE(std::filesystem::exists(stale));
}

// ---------------------------------------------------------------- //
// Campaign worker wire format
// ---------------------------------------------------------------- //

TEST(CampaignWire, ConfigResultRoundTrips)
{
    CampaignOptions options;
    options.spec = RunSpec{3, 4, 42};
    options.pointsPerConfig = 8;
    options.configs = {Config::B, Config::U};
    const CampaignReport report = runCampaign(options);
    ASSERT_EQ(report.configs.size(), 2u);

    for (const CampaignConfigResult &c : report.configs) {
        const std::string wire = serializeConfigResult(c);
        const auto back = deserializeConfigResult(wire);
        ASSERT_TRUE(back.has_value());
        // Serialization is exact, so a second trip is byte-stable.
        EXPECT_EQ(serializeConfigResult(*back), wire);
        EXPECT_EQ(back->config, c.config);
        EXPECT_EQ(back->cycles, c.cycles);
        EXPECT_EQ(back->unrecoverable, c.unrecoverable);
        ASSERT_EQ(back->results.size(), c.results.size());
        ASSERT_EQ(back->failures.size(), c.failures.size());
    }
    EXPECT_FALSE(deserializeConfigResult("garbage").has_value());
    EXPECT_FALSE(deserializeConfigResult("").has_value());
}

TEST(CampaignWire, SweepIdTracksEveryInput)
{
    CampaignOptions a;
    EXPECT_EQ(campaignSweepId(a), campaignSweepId(a));
    CampaignOptions b = a;
    b.seed ^= 1;
    EXPECT_NE(campaignSweepId(a), campaignSweepId(b));
    CampaignOptions c = a;
    c.pointsPerConfig += 1;
    EXPECT_NE(campaignSweepId(a), campaignSweepId(c));
    CampaignOptions d = a;
    d.configs = {Config::B};
    EXPECT_NE(campaignSweepId(a), campaignSweepId(d));
}

TEST(CampaignIsolated, MatchesInProcessResultsAndResumes)
{
    CampaignOptions options;
    options.spec = RunSpec{3, 4, 42};
    options.pointsPerConfig = 8;
    options.configs = {Config::B, Config::U};

    const CampaignReport inProc = runCampaign(options);

    options.isolate = true;
    options.jobs = 2;
    options.retry.backoffBaseMs = 1;
    options.journalPath =
        scratchDir("campaign_iso") + "/campaign.journal";
    std::filesystem::create_directories(
        std::filesystem::path(options.journalPath).parent_path());
    const CampaignReport isolated = runCampaign(options);

    EXPECT_TRUE(isolated.quarantined.empty());
    EXPECT_EQ(campaignToJson(inProc), campaignToJson(isolated));

    // Resume replays the journal; the artifact stays byte-identical.
    options.resume = true;
    const CampaignReport resumed = runCampaign(options);
    EXPECT_EQ(campaignToJson(isolated), campaignToJson(resumed));
}

TEST(CampaignIsolated, QuarantinesACrashingConfigAndFinishesTheRest)
{
    CampaignOptions options;
    options.spec = RunSpec{3, 4, 42};
    options.pointsPerConfig = 8;
    options.configs = {Config::B, Config::U};
    options.isolate = true;
    options.jobs = 2;
    options.retry.maxAttempts = 2;
    options.retry.backoffBaseMs = 1;
    options.chaosCrashConfig = "B";

    const CampaignReport report = runCampaign(options);
    ASSERT_EQ(report.quarantined.size(), 1u);
    EXPECT_EQ(report.quarantined[0].config, Config::B);
    EXPECT_EQ(report.quarantined[0].failure.outcome,
              exp::JobOutcome::Crashed);
    EXPECT_EQ(report.quarantined[0].failure.attempts, 2u);
    ASSERT_EQ(report.configs.size(), 1u);
    EXPECT_EQ(report.configs[0].config, Config::U);
    EXPECT_GT(report.configs[0].points, 0u);
    EXPECT_FALSE(report.ok());
    // The JSON artifact carries the quarantine record.
    EXPECT_NE(campaignToJson(report).find("\"quarantined\""),
              std::string::npos);
    EXPECT_NE(campaignToJson(report).find("\"crashed\""),
              std::string::npos);
}

TEST(CampaignParallel, BitIdenticalAcrossJobCounts)
{
    CampaignOptions options;
    options.spec = RunSpec{3, 4, 42};
    options.pointsPerConfig = 12;

    options.jobs = 1;
    const CampaignReport serial = runCampaign(options);
    options.jobs = 4;
    const CampaignReport parallel = runCampaign(options);

    EXPECT_EQ(serial.describe(), parallel.describe());
    ASSERT_EQ(serial.configs.size(), parallel.configs.size());
    for (std::size_t c = 0; c < serial.configs.size(); ++c) {
        const CampaignConfigResult &s = serial.configs[c];
        const CampaignConfigResult &p = parallel.configs[c];
        EXPECT_EQ(s.cycles, p.cycles);
        EXPECT_EQ(s.transientRejects, p.transientRejects);
        ASSERT_EQ(s.results.size(), p.results.size());
        for (std::size_t i = 0; i < s.results.size(); ++i) {
            EXPECT_EQ(s.results[i].crashCycle,
                      p.results[i].crashCycle);
            EXPECT_EQ(s.results[i].outcome, p.results[i].outcome);
            EXPECT_EQ(s.results[i].entriesTorn,
                      p.results[i].entriesTorn);
        }
    }
}

} // namespace
} // namespace ede
