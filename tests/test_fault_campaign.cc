/**
 * @file
 * End-to-end tests for the crash-injection campaign: Table III's
 * safety split under fault pressure, determinism from the root seed,
 * and reproducer formatting.
 */

#include <gtest/gtest.h>

#include "fault/campaign.hh"

namespace ede {
namespace {

CampaignOptions
smallOptions()
{
    CampaignOptions opts;
    opts.app = AppId::Update;
    opts.seed = 5;
    opts.pointsPerConfig = 40;
    opts.spec = RunSpec{/*txns=*/4, /*opsPerTxn=*/5, /*seed=*/11};
    opts.acceptFaultRate = 0.02;
    return opts;
}

TEST(Campaign, SafeConfigsCleanUnsafeConfigFails)
{
    const CampaignReport report = runCampaign(smallOptions());
    ASSERT_EQ(report.configs.size(), kAllConfigs.size());
    EXPECT_TRUE(report.safeConfigsClean());
    bool saw_unsafe_failure = false;
    for (const CampaignConfigResult &c : report.configs) {
        EXPECT_GT(c.points, 0u) << configName(c.config);
        EXPECT_EQ(c.points,
                  c.recovered + c.tornDetected + c.unrecoverable);
        if (!configIsUnsafe(c.config)) {
            EXPECT_EQ(c.unrecoverable, 0u) << configName(c.config);
            EXPECT_TRUE(c.failures.empty()) << configName(c.config);
        }
        if (c.config == Config::U && c.unrecoverable > 0)
            saw_unsafe_failure = true;
    }
    EXPECT_TRUE(saw_unsafe_failure)
        << "expected the fenceless configuration to lose data";
    // The summary must carry the verdict line.
    EXPECT_NE(report.describe().find("safe configurations clean"),
              std::string::npos);
}

TEST(Campaign, IsDeterministicInTheRootSeed)
{
    CampaignOptions opts = smallOptions();
    opts.configs = {Config::B, Config::U};
    const CampaignReport a = runCampaign(opts);
    const CampaignReport b = runCampaign(opts);
    ASSERT_EQ(a.configs.size(), b.configs.size());
    for (std::size_t i = 0; i < a.configs.size(); ++i) {
        EXPECT_EQ(a.configs[i].points, b.configs[i].points);
        EXPECT_EQ(a.configs[i].recovered, b.configs[i].recovered);
        EXPECT_EQ(a.configs[i].tornDetected,
                  b.configs[i].tornDetected);
        EXPECT_EQ(a.configs[i].unrecoverable,
                  b.configs[i].unrecoverable);
        ASSERT_EQ(a.configs[i].results.size(),
                  b.configs[i].results.size());
        for (std::size_t j = 0; j < a.configs[i].results.size(); ++j) {
            EXPECT_EQ(a.configs[i].results[j].crashCycle,
                      b.configs[i].results[j].crashCycle);
            EXPECT_EQ(a.configs[i].results[j].outcome,
                      b.configs[i].results[j].outcome);
        }
    }
}

TEST(Campaign, TornPlansExerciseLogChecksums)
{
    // Across the whole campaign the torn-persist plans must hit the
    // undo log at least once -- the checksum path is the reason a
    // safe configuration survives a torn final persist.
    const CampaignReport report = runCampaign(smallOptions());
    std::size_t torn = 0;
    for (const CampaignConfigResult &c : report.configs)
        torn += c.tornDetected;
    EXPECT_GT(torn, 0u);
}

TEST(Campaign, ReproducerDescribesTheFullTuple)
{
    Reproducer rep;
    rep.seed = 9;
    rep.config = Config::IQ;
    rep.crashCycle = 1234;
    rep.plan = makeFaultPlan(77, 128);
    const std::string s = rep.describe();
    EXPECT_NE(s.find("seed=9"), std::string::npos);
    EXPECT_NE(s.find("config=IQ"), std::string::npos);
    EXPECT_NE(s.find("crashCycle=1234"), std::string::npos);
    EXPECT_NE(s.find("faultPlan={"), std::string::npos);
}

TEST(Campaign, OutcomeNamesAreStable)
{
    EXPECT_STREQ(crashOutcomeName(CrashOutcome::Recovered),
                 "recovered");
    EXPECT_STREQ(crashOutcomeName(CrashOutcome::TornLogDetected),
                 "torn-log-detected");
    EXPECT_STREQ(crashOutcomeName(CrashOutcome::Unrecoverable),
                 "unrecoverable");
}

} // namespace
} // namespace ede
