/**
 * @file
 * Unit tests for the fault-injection subsystem: deterministic fault
 * plans, adversarial crash-image reconstruction under the K-slot ADR
 * drain model, torn-persist masks, the transient accept-fault
 * injector with the controller's bounded-backoff retry, and the
 * core's no-progress watchdog.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstring>

#include "apps/harness.hh"
#include "fault/crash_image.hh"
#include "fault/fault_plan.hh"
#include "sim_test_util.hh"

namespace ede {
namespace {

constexpr Addr kLine = 2ull << 30;  // NVM-side, 256 B aligned.

PersistEvent
event(Addr addr, std::uint64_t value, Cycle cycle,
      std::uint32_t size = 8)
{
    PersistEvent e;
    e.addr = addr;
    e.size = size;
    e.cycle = cycle;
    e.bytes.resize(size);
    for (std::size_t off = 0; off < size; off += 8)
        std::memcpy(e.bytes.data() + off, &value, 8);
    return e;
}

TEST(FaultPlan, DerivationIsDeterministic)
{
    for (std::uint64_t seed : {1ull, 7ull, 12345ull}) {
        const FaultPlan a = makeFaultPlan(seed, 128);
        const FaultPlan b = makeFaultPlan(seed, 128);
        EXPECT_EQ(a.drainLines, b.drainLines);
        EXPECT_EQ(a.tear, b.tear);
        EXPECT_TRUE(a.drainLines == FaultPlan::kDrainAll ||
                    a.drainLines <= 128u);
    }
}

TEST(FaultPlan, TornMaskIsAContiguousPrefix)
{
    FaultPlan plan;
    plan.seed = 3;
    plan.tear = TearKind::Prefix;
    // Two chunks: exactly the leading one survives.
    EXPECT_EQ(tornChunkMask(plan, 2), 0b01u);
    const std::uint64_t m = tornChunkMask(plan, 4);
    EXPECT_NE(m, 0u);
    EXPECT_NE(m, 0xfu);
    const int kept = std::popcount(m);
    EXPECT_EQ(m, (std::uint64_t{1} << kept) - 1);
    // Single-chunk events lose everything.
    EXPECT_EQ(tornChunkMask(plan, 1), 0u);
}

TEST(FaultPlan, TornMaskIsAContiguousSuffix)
{
    FaultPlan plan;
    plan.seed = 3;
    plan.tear = TearKind::Suffix;
    EXPECT_EQ(tornChunkMask(plan, 2), 0b10u);
    const std::uint64_t m = tornChunkMask(plan, 4);
    EXPECT_NE(m, 0u);
    EXPECT_NE(m, 0xfu);
    const int kept = std::popcount(m);
    EXPECT_EQ(m >> (4 - kept), (std::uint64_t{1} << kept) - 1);
    EXPECT_EQ(m & ((std::uint64_t{1} << (4 - kept)) - 1), 0u);
}

TEST(FaultPlan, InterleavedMaskIsAStrictSubset)
{
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        FaultPlan plan;
        plan.seed = seed;
        plan.tear = TearKind::Interleaved;
        const std::uint64_t m = tornChunkMask(plan, 4);
        EXPECT_NE(m, 0xfu) << "seed " << seed;
        EXPECT_EQ(m, tornChunkMask(plan, 4)) << "seed " << seed;
    }
}

TEST(CrashImage, BenignPlanAppliesEverything)
{
    MemoryImage img;
    const std::vector<PersistEvent> events = {
        event(kLine, 1, 10), event(kLine + 256, 2, 20),
        event(kLine + 512, 3, 30)};
    FaultPlan plan;  // Benign by default.
    const FaultyImageReport r =
        applyFaultyPersistEvents(img, events, {}, 100, plan);
    EXPECT_EQ(r.drained, 3u);
    EXPECT_EQ(r.dropped, 0u);
    EXPECT_FALSE(r.tore);
    EXPECT_EQ(img.read<std::uint64_t>(kLine), 1u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine + 256), 2u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine + 512), 3u);
}

TEST(CrashImage, EventsAfterTheCrashAreIgnored)
{
    MemoryImage img;
    const std::vector<PersistEvent> events = {
        event(kLine, 1, 10), event(kLine + 256, 2, 50)};
    FaultPlan plan;
    const FaultyImageReport r =
        applyFaultyPersistEvents(img, events, {}, 20, plan);
    EXPECT_EQ(r.drained, 1u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine), 1u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine + 256), 0u);
}

TEST(CrashImage, DrainBudgetCutsAnAcceptOrderPrefix)
{
    // Three pending events on three distinct lines; a two-line drain
    // budget keeps exactly the first two.
    MemoryImage img;
    const std::vector<PersistEvent> events = {
        event(kLine, 1, 10), event(kLine + 256, 2, 20),
        event(kLine + 512, 3, 30)};
    FaultPlan plan;
    plan.drainLines = 2;
    const FaultyImageReport r =
        applyFaultyPersistEvents(img, events, {}, 100, plan);
    EXPECT_EQ(r.drained, 2u);
    EXPECT_EQ(r.dropped, 1u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine), 1u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine + 256), 2u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine + 512), 0u);
}

TEST(CrashImage, SameLineEventsShareOneDrainSlot)
{
    MemoryImage img;
    const std::vector<PersistEvent> events = {
        event(kLine, 1, 10), event(kLine + 8, 2, 20),
        event(kLine + 256, 3, 30)};
    FaultPlan plan;
    plan.drainLines = 1;
    const FaultyImageReport r =
        applyFaultyPersistEvents(img, events, {}, 100, plan);
    // Both updates of the first line fit in one drain slot; the
    // second line is past the budget.
    EXPECT_EQ(r.drained, 2u);
    EXPECT_EQ(r.dropped, 1u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine), 1u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine + 8), 2u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine + 256), 0u);
}

TEST(CrashImage, YoungOnMediaEventsNeverJumpTheCut)
{
    // The soundness property: an older PENDING event past the drain
    // budget must also discard every younger event -- even one whose
    // line did reach the media -- because a durable set that is not
    // an accept-order prefix fabricates an ordering the memory system
    // never produced.
    MemoryImage img;
    const std::vector<PersistEvent> events = {
        event(kLine, 1, 10),        // Pending at the crash.
        event(kLine + 256, 2, 20)}; // On media by cycle 40.
    const std::vector<MediaWriteEvent> media = {
        MediaWriteEvent{kLine + 256, 40}};
    FaultPlan plan;
    plan.drainLines = 0;
    const FaultyImageReport r =
        applyFaultyPersistEvents(img, events, media, 50, plan);
    EXPECT_EQ(r.drained, 0u);
    EXPECT_EQ(r.onMedia, 0u);
    EXPECT_EQ(r.dropped, 2u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine), 0u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine + 256), 0u);
}

TEST(CrashImage, OnMediaEventsConsumeNoDrainBudget)
{
    MemoryImage img;
    const std::vector<PersistEvent> events = {
        event(kLine, 1, 10),        // On media by cycle 30.
        event(kLine + 256, 2, 20)}; // Pending at the crash.
    const std::vector<MediaWriteEvent> media = {
        MediaWriteEvent{kLine, 30}};
    FaultPlan plan;
    plan.drainLines = 1;
    const FaultyImageReport r =
        applyFaultyPersistEvents(img, events, media, 50, plan);
    EXPECT_EQ(r.onMedia, 1u);
    EXPECT_EQ(r.drained, 1u);
    EXPECT_EQ(r.dropped, 0u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine), 1u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine + 256), 2u);
}

TEST(CrashImage, TearHitsOnlyTheLastDurableEvent)
{
    MemoryImage img;
    const std::vector<PersistEvent> events = {
        event(kLine, 7, 10), event(kLine + 256, 9, 20, /*size=*/16)};
    FaultPlan plan;
    plan.tear = TearKind::Prefix;
    const FaultyImageReport r =
        applyFaultyPersistEvents(img, events, {}, 100, plan);
    EXPECT_TRUE(r.tore);
    EXPECT_EQ(r.tornAddr, kLine + 256);
    EXPECT_EQ(r.tornMask, 0b01u);
    // The older event landed whole; the final one lost its second
    // 8-byte chunk.
    EXPECT_EQ(img.read<std::uint64_t>(kLine), 7u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine + 256), 9u);
    EXPECT_EQ(img.read<std::uint64_t>(kLine + 256 + 8), 0u);
}

TEST(Injector, BoundsConsecutiveRejectsPerLine)
{
    FaultPlan plan;
    plan.seed = 11;
    plan.acceptFaultRate = 1.0;  // Reject whenever allowed.
    plan.maxConsecutiveRejects = 3;
    const AcceptFaultHook hook = makeAcceptFaultInjector(plan);
    ASSERT_TRUE(hook);
    MemReq req;
    req.kind = ReqKind::Writeback;
    req.addr = kLine;
    req.size = 64;
    int streak = 0;
    for (Cycle c = 0; c < 40; ++c) {
        if (hook(req, c)) {
            ++streak;
            EXPECT_LE(streak, 3);
        } else {
            streak = 0;
        }
    }
}

TEST(Injector, BenignPlanYieldsNoHook)
{
    FaultPlan plan;
    EXPECT_FALSE(makeAcceptFaultInjector(plan));
}

TEST(Injector, ControllerRetriesAbsorbTransientRejects)
{
    RunSpec spec;
    spec.txns = 4;
    spec.opsPerTxn = 5;
    WorkloadHarness h(AppId::Update, Config::B, spec);
    h.enableAudit();
    FaultPlan plan;
    plan.seed = 21;
    plan.acceptFaultRate = 0.2;
    h.system().mem().controller().nvm().setAcceptFaultHook(
        makeAcceptFaultInjector(plan));
    h.generate();
    h.simulate();
    // Rejections happened, the run still completed, ordering stayed
    // clean and the final image recovers.
    EXPECT_GT(
        h.system().mem().controller().nvm().stats().transientRejects,
        0u);
    EXPECT_TRUE(h.audit().clean());
    const Cycle end = h.system().core().stats().cycles;
    const MemoryImage recovered = h.recoveredImageAt(end);
    EXPECT_TRUE(h.app().checkRecovered(recovered));
}

TEST(Watchdog, NoProgressYieldsStructuredError)
{
    // Wedge the NVM outright: every write-class accept is refused, so
    // the cvap below can never complete and the write buffer never
    // drains.  The watchdog must convert the stall into a structured
    // error instead of spinning to the maxCycles backstop.
    CoreParams overrides;
    overrides.watchdogCycles = 3000;
    MiniSim sim(EnforceMode::None, overrides);
    sim.mem->controller().nvm().setAcceptFaultHook(
        [](const MemReq &, Cycle) { return true; });
    Trace t;
    TraceBuilder b(t);
    b.movImm(1, 42);
    b.str(1, kNoReg, sim.nvmLine(0), 42);
    b.cvap(kNoReg, sim.nvmLine(0));
    b.dsbSy();
    sim.run(t);
    const SimError &err = sim.core->simError();
    ASSERT_TRUE(err);
    EXPECT_EQ(err.kind, SimErrorKind::WatchdogNoProgress);
    EXPECT_GT(err.cycle, err.lastProgressCycle);
    const std::string dump = err.describe();
    EXPECT_NE(dump.find("watchdog-no-progress"), std::string::npos);
    EXPECT_NE(dump.find("wb chain"), std::string::npos);
}

TEST(Watchdog, MaxCyclesBackstopStillFires)
{
    CoreParams overrides;
    overrides.maxCycles = 100;
    MiniSim sim(EnforceMode::None, overrides);
    Trace t;
    TraceBuilder b(t);
    b.movImm(1, 0);
    for (int i = 0; i < 400; ++i)
        b.alu(1, 1);  // Serial chain: one ALU per cycle at best.
    sim.run(t);
    const SimError &err = sim.core->simError();
    ASSERT_TRUE(err);
    EXPECT_EQ(err.kind, SimErrorKind::MaxCyclesExceeded);
}

TEST(Watchdog, CleanRunsReportNoError)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    b.movImm(1, 1);
    b.alu(2, 1);
    sim.run(t);
    EXPECT_FALSE(sim.core->simError());
}

} // namespace
} // namespace ede
