/**
 * @file
 * Tests for the persistence framework: instruction patterns per
 * configuration (Figures 2, 4, 7), functional correctness of the
 * undo log, and the commit protocol.
 */

#include <gtest/gtest.h>

#include "nvm/framework.hh"
#include "nvm/undo_log.hh"

namespace ede {
namespace {

constexpr Addr kNvmBase = 2ull << 30;

struct FwFixture
{
    explicit FwFixture(Config cfg)
        : builder(trace),
          heap(kNvmBase + (1 << 20), 64 << 20)
    {
        log.stateAddr = kNvmBase;
        log.entriesBase = kNvmBase + 64;
        log.capacity = 256;
        fw = std::make_unique<NvmFramework>(cfg, builder, img, heap,
                                            log);
    }

    Trace trace;
    TraceBuilder builder;
    MemoryImage img;
    PersistentHeap heap;
    UndoLogLayout log;
    std::unique_ptr<NvmFramework> fw;
};

TEST(Framework, BaselineEmitsFigure4Pattern)
{
    FwFixture f(Config::B);
    const Addr x = f.heap.alloc(16);
    f.img.write<std::uint64_t>(x, 5);
    f.fw->txBegin();
    const std::size_t before = f.trace.size();
    f.fw->pWriteU64(x, 6);
    // Framework prologue (TX lookup + reserve), then the Figure 4
    // skeleton: ldr; seal; stp; dc cvap; dsb sy; mov; str; dc cvap.
    std::vector<Op> got;
    for (std::size_t i = before; i < f.trace.size(); ++i)
        got.push_back(f.trace[i].op());
    const std::vector<Op> want = {
        // Prologue: operator= dispatch and reserve_uint64().
        Op::Mov, Op::Ldr, Op::IntAlu, Op::IntAlu, Op::IntAlu,
        Op::IntAlu, Op::IntAlu, Op::IntAlu,
        // Figure 4 proper (plus the entry-checksum seal ALU op).
        Op::Mov, Op::Ldr, Op::Mov, Op::IntAlu, Op::IntAlu, Op::Stp,
        Op::DcCvap, Op::DsbSy, Op::Mov, Op::Str, Op::DcCvap};
    EXPECT_EQ(got, want);
    // No EDE keys in the baseline.
    EXPECT_EQ(f.trace.edeCount(), 0u);
}

TEST(Framework, EdeConfigEmitsFigure7Keys)
{
    FwFixture f(Config::WB);
    const Addr x = f.heap.alloc(16);
    f.fw->txBegin();
    f.fw->pWriteU64(x, 6);
    ASSERT_EQ(f.fw->obligations().size(), 1u);
    const PersistObligation &ob = f.fw->obligations()[0];
    const DynInst &log_cvap = f.trace[ob.logCvapIdx];
    const DynInst &data_str = f.trace[ob.dataStrIdx];
    const DynInst &data_cvap = f.trace[ob.dataCvapIdx];
    EXPECT_TRUE(log_cvap.isCvap());
    EXPECT_EQ(log_cvap.si.edkDef, fwkeys::kLogEntry);
    EXPECT_TRUE(data_str.isStore());
    EXPECT_EQ(data_str.si.edkUse, fwkeys::kLogEntry);
    EXPECT_TRUE(data_cvap.isCvap());
    EXPECT_EQ(data_cvap.si.edkDef, fwkeys::kData);
    // And crucially: no DSB between them.
    for (std::size_t i = ob.logCvapIdx; i <= ob.dataCvapIdx; ++i)
        EXPECT_FALSE(f.trace[i].isFence());
}

TEST(Framework, SuConfigUsesStoreBarriers)
{
    FwFixture f(Config::SU);
    const Addr x = f.heap.alloc(16);
    f.fw->txBegin();
    f.fw->pWriteU64(x, 6);
    EXPECT_EQ(f.trace.opCount(Op::DmbSt), 1u);
    EXPECT_EQ(f.trace.opCount(Op::DsbSy), 0u);
    EXPECT_EQ(f.trace.edeCount(), 0u);
}

TEST(Framework, UnsafeConfigEmitsNoOrdering)
{
    FwFixture f(Config::U);
    const Addr x = f.heap.alloc(16);
    f.fw->txBegin();
    f.fw->pWriteU64(x, 6);
    f.fw->txCommit();
    EXPECT_EQ(f.trace.fenceCount(), 0u);
    EXPECT_EQ(f.trace.edeCount(), 0u);
    EXPECT_EQ(f.trace.opCount(Op::WaitKey), 0u);
}

TEST(Framework, FunctionalWriteAndLogContents)
{
    FwFixture f(Config::B);
    const Addr x = f.heap.alloc(16);
    f.img.write<std::uint64_t>(x, 41);
    f.fw->txBegin();
    f.fw->pWriteU64(x, 42);
    EXPECT_EQ(f.img.read<std::uint64_t>(x), 42u);
    // Log slot 0 records {sealed addr, old value}.
    EXPECT_EQ(f.img.read<std::uint64_t>(f.log.entryAddr(0)),
              sealUndoEntry(x, 41));
    EXPECT_EQ(f.img.read<std::uint64_t>(f.log.entryAddr(0) + 8), 41u);
}

TEST(Framework, CommitTruncatesLogAndRestoresActive)
{
    FwFixture f(Config::B);
    const Addr x = f.heap.alloc(16);
    f.fw->txBegin();
    f.fw->pWriteU64(x, 1);
    f.fw->pWriteU64(x, 2);
    f.fw->txCommit();
    EXPECT_EQ(f.img.read<std::uint64_t>(f.log.stateAddr), kTxActive);
    EXPECT_EQ(f.img.read<std::uint64_t>(f.log.entryAddr(0)), 0u);
    EXPECT_EQ(f.img.read<std::uint64_t>(f.log.entryAddr(1)), 0u);
    EXPECT_EQ(f.fw->txCount(), 1u);
    EXPECT_FALSE(f.fw->inTx());
}

TEST(Framework, BaselineCommitUsesFourBarriers)
{
    FwFixture f(Config::B);
    const Addr x = f.heap.alloc(16);
    f.fw->txBegin();
    f.fw->pWriteU64(x, 1); // One DSB inside the op.
    const std::size_t before = f.trace.opCount(Op::DsbSy);
    f.fw->txCommit();
    EXPECT_EQ(f.trace.opCount(Op::DsbSy) - before, 4u);
}

TEST(Framework, EdeCommitUsesWaitKeys)
{
    FwFixture f(Config::IQ);
    const Addr x = f.heap.alloc(16);
    f.fw->txBegin();
    f.fw->pWriteU64(x, 1);
    f.fw->txCommit();
    // WAIT_KEY(state-clear) at txBegin, then WAIT_KEY(data) and
    // WAIT_KEY(zeroes) in the commit; no fences anywhere.
    EXPECT_EQ(f.trace.opCount(Op::WaitKey), 3u);
    EXPECT_EQ(f.trace.fenceCount(), 0u);
    // The state-clear persist carries the cross-transaction key.
    bool saw_state_clear = false;
    for (const DynInst &di : f.trace) {
        if (di.isCvap() && di.si.edkDef == fwkeys::kStateClear)
            saw_state_clear = true;
    }
    EXPECT_TRUE(saw_state_clear);
}

TEST(Framework, EdeTxBeginWaitsOnStateClear)
{
    FwFixture f(Config::WB);
    f.fw->txBegin();
    ASSERT_GE(f.trace.size(), 1u);
    EXPECT_EQ(f.trace[0].op(), Op::WaitKey);
    EXPECT_EQ(f.trace[0].si.edkUse, fwkeys::kStateClear);
}

TEST(Framework, ZeroingConsumesCommitRecordPersist)
{
    FwFixture f(Config::WB);
    const Addr x = f.heap.alloc(16);
    f.fw->txBegin();
    f.fw->pWriteU64(x, 1);
    f.fw->txCommit();
    bool saw_zeroing_consumer = false;
    for (const DynInst &di : f.trace) {
        if (di.isStore() && di.si.edkUse == fwkeys::kCommit &&
            di.addr == f.log.entryAddr(0)) {
            saw_zeroing_consumer = true;
        }
    }
    EXPECT_TRUE(saw_zeroing_consumer);
}

TEST(Framework, ObligationsAccumulatePerWrite)
{
    FwFixture f(Config::U);
    const Addr x = f.heap.alloc(32);
    f.fw->txBegin();
    f.fw->pWriteU64(x, 1);
    f.fw->pWriteU64(x + 8, 2);
    f.fw->pWriteU64(x + 16, 3);
    EXPECT_EQ(f.fw->obligations().size(), 3u);
}

TEST(Framework, LoadEmitsChainableRegister)
{
    FwFixture f(Config::B);
    const Addr x = f.heap.alloc(16);
    f.img.write<std::uint64_t>(x, 1234);
    std::uint64_t v = 0;
    const RegIndex r = f.fw->loadU64(x, kNoReg, &v);
    EXPECT_EQ(v, 1234u);
    // Chained load: the returned register is the new base.
    const std::size_t before = f.trace.size();
    f.fw->loadU64(x + 8, r, nullptr);
    EXPECT_EQ(f.trace.size() - before, 1u); // No extra address mov.
    EXPECT_EQ(f.trace[before].si.base, r);
}

TEST(Framework, RawStoreBypassesLogging)
{
    FwFixture f(Config::B);
    const Addr x = f.heap.alloc(16);
    f.fw->rawStoreU64(x, 50);
    EXPECT_EQ(f.img.read<std::uint64_t>(x), 50u);
    EXPECT_EQ(f.trace.opCount(Op::Stp), 0u); // No log append.
}

TEST(Framework, RangeWriteSnapshotsWholeObjectOnce)
{
    FwFixture f(Config::WB);
    const Addr node = f.heap.alloc(64); // An 8-word "node".
    for (int w = 0; w < 8; ++w)
        f.img.write<std::uint64_t>(node + 8 * w, 100 + w);
    f.fw->txBegin();
    const std::size_t before_stp = f.trace.opCount(Op::Stp);
    f.fw->pWriteU64InRange(node + 16, 1, node, 8);
    // The whole 8-word range was logged.
    EXPECT_EQ(f.trace.opCount(Op::Stp) - before_stp, 8u);
    // Log entries carry {sealed addr, old value} for each word.
    for (int w = 0; w < 8; ++w) {
        EXPECT_EQ(f.img.read<std::uint64_t>(f.log.entryAddr(w)),
                  sealUndoEntry(node + 8 * w, 100u + w));
        EXPECT_EQ(f.img.read<std::uint64_t>(f.log.entryAddr(w) + 8),
                  100u + w);
    }
    // A second write into the range adds no further log entries.
    const std::size_t after_first = f.trace.opCount(Op::Stp);
    f.fw->pWriteU64InRange(node + 24, 2, node, 8);
    EXPECT_EQ(f.trace.opCount(Op::Stp), after_first);
    EXPECT_EQ(f.img.read<std::uint64_t>(node + 16), 1u);
    EXPECT_EQ(f.img.read<std::uint64_t>(node + 24), 2u);
}

TEST(Framework, RangeSnapshotUsesRotatingChainKeys)
{
    FwFixture f(Config::WB);
    const Addr a = f.heap.alloc(64);
    const Addr b_node = f.heap.alloc(64);
    f.fw->txBegin();
    f.fw->pWriteU64InRange(a, 1, a, 8);
    f.fw->pWriteU64InRange(b_node, 2, b_node, 8);
    // Snapshot persists carry range keys; the consumers use them.
    std::set<Edk> producer_keys;
    std::set<Edk> consumer_keys;
    for (const DynInst &di : f.trace) {
        if (di.isCvap() && di.si.edkDef >= fwkeys::kRangeFirst)
            producer_keys.insert(di.si.edkDef);
        if (di.isStore() && di.si.edkUse >= fwkeys::kRangeFirst)
            consumer_keys.insert(di.si.edkUse);
    }
    EXPECT_EQ(producer_keys.size(), 2u); // Two distinct range keys.
    EXPECT_EQ(consumer_keys, producer_keys);
}

TEST(Framework, RangeWriteRollsBackToOldestValue)
{
    FwFixture f(Config::B);
    const Addr node = f.heap.alloc(64);
    f.img.write<std::uint64_t>(node, 7);
    f.fw->txBegin();
    f.fw->pWriteU64InRange(node, 8, node, 8);
    f.fw->pWriteU64InRange(node, 9, node, 8); // Deduped write.
    // Crash before commit: recovery applies the snapshot.
    MemoryImage crash;
    // Copy the (uncommitted) log and the data as "durable".
    crash.copyRange(f.img, f.log.stateAddr, 64);
    crash.copyRange(f.img, f.log.entriesBase, 16 * 16);
    crash.copyRange(f.img, node, 64);
    recoverUndoLog(crash, f.log);
    EXPECT_EQ(crash.read<std::uint64_t>(node), 7u);
}

TEST(Framework, WordDedupSkipsRepeatedLogging)
{
    FwFixture f(Config::B);
    const Addr x = f.heap.alloc(16);
    f.img.write<std::uint64_t>(x, 1);
    f.fw->txBegin();
    f.fw->pWriteU64(x, 2);
    const std::size_t stps = f.trace.opCount(Op::Stp);
    const std::size_t fences = f.trace.fenceCount();
    f.fw->pWriteU64(x, 3); // Same word: update-only fast path.
    EXPECT_EQ(f.trace.opCount(Op::Stp), stps);
    EXPECT_EQ(f.trace.fenceCount(), fences);
    // The log still holds the OLDEST value for rollback.
    EXPECT_EQ(f.img.read<std::uint64_t>(f.log.entryAddr(0) + 8), 1u);
    EXPECT_EQ(f.img.read<std::uint64_t>(x), 3u);
}

TEST(Framework, DedupResetsAcrossTransactions)
{
    FwFixture f(Config::B);
    const Addr x = f.heap.alloc(16);
    f.fw->txBegin();
    f.fw->pWriteU64(x, 1);
    f.fw->txCommit();
    f.fw->txBegin();
    const std::size_t stps = f.trace.opCount(Op::Stp);
    f.fw->pWriteU64(x, 2); // New tx: must log again.
    EXPECT_EQ(f.trace.opCount(Op::Stp), stps + 1);
}

TEST(Framework, LogRotationWrapsAroundCapacity)
{
    FwFixture f(Config::U);
    const Addr arr = f.heap.alloc(8 * 300);
    // 256-entry log; two transactions of 200 writes wrap the cursor.
    for (int tx = 0; tx < 2; ++tx) {
        f.fw->txBegin();
        for (int i = 0; i < 200; ++i)
            f.fw->pWriteU64(arr + 8 * (tx * 100 + i / 2), i);
        f.fw->txCommit();
    }
    // After both commits every entry is zeroed again.
    for (std::uint64_t e = 0; e < f.log.capacity; ++e)
        EXPECT_EQ(f.img.read<std::uint64_t>(f.log.entryAddr(e)), 0u);
}

TEST(FrameworkDeath, RangeWriteOutsideRangePanics)
{
    FwFixture f(Config::B);
    const Addr node = f.heap.alloc(64);
    f.fw->txBegin();
    EXPECT_DEATH(f.fw->pWriteU64InRange(node + 64, 1, node, 8),
                 "outside its declared range");
}

TEST(FrameworkDeath, WriteOutsideTransactionPanics)
{
    FwFixture f(Config::B);
    const Addr x = f.heap.alloc(16);
    EXPECT_DEATH(f.fw->pWriteU64(x, 1), "outside a failure-atomic");
}

TEST(FrameworkDeath, NestedTransactionPanics)
{
    FwFixture f(Config::B);
    f.fw->txBegin();
    EXPECT_DEATH(f.fw->txBegin(), "nest");
}

} // namespace
} // namespace ede
