/**
 * @file
 * Tests for the workload harness: phase accounting, backdoor pool
 * initialization, log placement and audit plumbing.
 */

#include <gtest/gtest.h>

#include "apps/harness.hh"
#include "apps/kernels.hh"

namespace ede {
namespace {

RunSpec
tiny()
{
    RunSpec spec;
    spec.txns = 2;
    spec.opsPerTxn = 4;
    return spec;
}

TEST(Harness, OpPhaseExcludesSetup)
{
    WorkloadHarness h(AppId::Update, Config::B, tiny());
    h.generate();
    const Cycle total = h.simulate();
    EXPECT_LT(h.opPhaseCycles(), total);
    EXPECT_GT(h.opPhaseCycles(), 0u);
}

TEST(Harness, LogIsPlacedAtNvmBaseWithCapacityHeadroom)
{
    RunSpec spec = tiny();
    spec.opsPerTxn = 100;
    WorkloadHarness h(AppId::Btree, Config::WB, spec);
    const UndoLogLayout &log = h.framework().logLayout();
    EXPECT_EQ(log.stateAddr, makeParams(Config::WB).mem.map.nvmBase());
    EXPECT_GE(log.capacity, spec.opsPerTxn * 128);
    EXPECT_EQ(log.entriesBase & 63, 0u);
}

TEST(Harness, BackdoorInitializesAllThreeImages)
{
    WorkloadHarness h(AppId::Update, Config::B, tiny());
    h.generate();
    auto *kernel = dynamic_cast<ArrayKernelBase *>(&h.app());
    ASSERT_NE(kernel, nullptr);
    const Addr a = kernel->arrayAddr();
    const auto v = h.system().volatileImage().read<std::uint64_t>(a);
    EXPECT_NE(v, 0u);
    // Timing and durable images hold the initial value even before
    // simulation: the pool pre-exists.
    EXPECT_EQ(h.system().timingImage().read<std::uint64_t>(a), v);
    EXPECT_EQ(h.system().nvmImage().read<std::uint64_t>(a), v);
    // And the line is cache-resident (functional warmup).
    EXPECT_TRUE(h.system().mem().l3().probe(a));
}

TEST(Harness, ConfigsShareTheWorkloadSeed)
{
    WorkloadHarness hb(AppId::Swap, Config::B, tiny());
    WorkloadHarness hu(AppId::Swap, Config::U, tiny());
    hb.generate();
    hu.generate();
    // Same functional end state regardless of configuration.
    auto *kb = dynamic_cast<ArrayKernelBase *>(&hb.app());
    auto *ku = dynamic_cast<ArrayKernelBase *>(&hu.app());
    ASSERT_TRUE(kb && ku);
    for (int i = 0; i < 64; ++i) {
        const Addr a = kb->arrayAddr() + 8 * i;
        EXPECT_EQ(hb.system().volatileImage().read<std::uint64_t>(a),
                  hu.system().volatileImage().read<std::uint64_t>(
                      ku->arrayAddr() + 8 * i));
    }
}

TEST(Harness, AuditRequiresOptIn)
{
    WorkloadHarness h(AppId::Update, Config::B, tiny());
    h.generate();
    h.simulate();
    EXPECT_DEATH(h.audit(), "enableAudit");
}

TEST(Harness, MismatchedSimParamsAreRejected)
{
    SimParams wrong = makeParams(Config::B); // EnforceMode::None.
    EXPECT_DEATH(WorkloadHarness(AppId::Update, Config::WB, tiny(),
                                 AppParams{}, wrong),
                 "enforce-mismatch");
}

TEST(Harness, SetupCompleteCyclePrecedesFirstObligation)
{
    WorkloadHarness h(AppId::Update, Config::WB, tiny());
    h.enableAudit();
    h.generate();
    h.simulate();
    const auto &completions = h.system().completionCycles();
    const auto &obs = h.framework().obligations();
    ASSERT_FALSE(obs.empty());
    EXPECT_LE(h.setupCompleteCycle(),
              completions[obs.front().dataStrIdx]);
}

TEST(Harness, PersistEventsCoverTheLogAndTheData)
{
    WorkloadHarness h(AppId::Update, Config::B, tiny());
    h.enableAudit();
    h.generate();
    h.simulate();
    const UndoLogLayout &log = h.framework().logLayout();
    bool saw_log = false;
    bool saw_state = false;
    for (const PersistEvent &ev : h.system().persistEvents()) {
        if (ev.addr >= log.entriesBase &&
            ev.addr < log.entryAddr(log.capacity)) {
            saw_log = true;
        }
        if (ev.addr <= log.stateAddr &&
            log.stateAddr < ev.addr + ev.size) {
            saw_state = true;
        }
        EXPECT_EQ(ev.bytes.size(), ev.size);
    }
    EXPECT_TRUE(saw_log);
    EXPECT_TRUE(saw_state);
}

TEST(Harness, GenerateAndSimulateAreSingleShot)
{
    WorkloadHarness h(AppId::Update, Config::B, tiny());
    h.generate();
    EXPECT_DEATH(h.generate(), "single-shot");
    h.simulate();
    EXPECT_DEATH(h.simulate(), "single-shot");
}

} // namespace
} // namespace ede
