/**
 * @file
 * Unit tests for the persistent heap allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "nvm/heap.hh"

namespace ede {
namespace {

constexpr Addr kBase = 2ull << 30;

TEST(Heap, AllocationsAreAlignedAndDisjoint)
{
    PersistentHeap heap(kBase, 1 << 20);
    std::set<Addr> seen;
    for (int i = 0; i < 100; ++i) {
        const Addr a = heap.alloc(48);
        EXPECT_EQ(a & 0xf, 0u);
        EXPECT_GE(a, kBase);
        EXPECT_LT(a + 64, heap.limit());
        EXPECT_TRUE(seen.insert(a).second);
        // 48 rounds to the 64-byte class: no overlap with the next.
    }
    EXPECT_EQ(heap.bytesLive(), 100u * 64);
}

TEST(Heap, RoundsToPowerOfTwoClasses)
{
    PersistentHeap heap(kBase, 1 << 20);
    const Addr a = heap.alloc(1);
    const Addr b = heap.alloc(1);
    EXPECT_EQ(b - a, 16u); // Minimum class is 16 bytes.
    const Addr c = heap.alloc(17);
    const Addr d = heap.alloc(17);
    EXPECT_EQ(d - c, 32u);
}

TEST(Heap, FreeListReusesBlocks)
{
    PersistentHeap heap(kBase, 1 << 20);
    const Addr a = heap.alloc(256);
    heap.free(a, 256);
    EXPECT_EQ(heap.bytesLive(), 0u);
    const Addr b = heap.alloc(200); // Same 256-byte class.
    EXPECT_EQ(a, b);
}

TEST(Heap, DifferentClassesDoNotShareFreeLists)
{
    PersistentHeap heap(kBase, 1 << 20);
    const Addr a = heap.alloc(16);
    heap.free(a, 16);
    const Addr b = heap.alloc(32);
    EXPECT_NE(a, b);
}

TEST(Heap, ReservedBytesGrowMonotonically)
{
    PersistentHeap heap(kBase, 1 << 20);
    heap.alloc(64);
    const auto r1 = heap.bytesReserved();
    heap.alloc(64);
    EXPECT_GT(heap.bytesReserved(), r1);
    // Reuse does not grow the bump cursor.
    const Addr a = heap.alloc(64);
    heap.free(a, 64);
    const auto r2 = heap.bytesReserved();
    heap.alloc(64);
    EXPECT_EQ(heap.bytesReserved(), r2);
}

TEST(HeapDeath, ExhaustionIsFatal)
{
    PersistentHeap heap(kBase, 64);
    heap.alloc(64);
    EXPECT_EXIT(heap.alloc(64), ::testing::ExitedWithCode(1),
                "exhausted");
}

} // namespace
} // namespace ede
