/**
 * @file
 * Full-system integration: every (application x configuration) pair
 * simulates to completion; safe configurations always pass the
 * persist-ordering audit; the unsafe ones demonstrably violate it;
 * and the relative performance of the configurations has the shape
 * of the paper's Figure 9.
 */

#include <gtest/gtest.h>

#include "apps/harness.hh"
#include "apps/kernels.hh"

namespace ede {
namespace {

using GridParam = std::tuple<AppId, Config>;

class GridTest : public ::testing::TestWithParam<GridParam>
{
};

TEST_P(GridTest, RunsToCompletionAndStaysFunctional)
{
    const auto [app, cfg] = GetParam();
    RunSpec spec;
    spec.txns = 3;
    spec.opsPerTxn = 5;
    WorkloadHarness h(app, cfg, spec);
    h.enableAudit();
    h.generate();
    const Cycle cycles = h.simulate();
    EXPECT_GT(cycles, 0u);
    EXPECT_EQ(h.system().core().stats().retired, h.trace().size());
    EXPECT_TRUE(h.app().checkFinal());
    // NVM traffic actually happened.
    EXPECT_GT(h.system().mem().controller().nvm().stats()
              .writesAccepted, 0u);
    // Safe configurations never let an update become visible before
    // its undo-log entry is durable.
    if (!configIsUnsafe(cfg))
        EXPECT_TRUE(h.audit().clean()) << "config "
                                       << configName(cfg);
}

TEST_P(GridTest, TimingImageConvergesToFunctionalState)
{
    const auto [app, cfg] = GetParam();
    RunSpec spec;
    spec.txns = 2;
    spec.opsPerTxn = 4;
    WorkloadHarness h(app, cfg, spec);
    h.generate();
    h.simulate();
    // After the run drains, every store has been applied in
    // visibility order; the coherent image must equal the functional
    // one on the log state word (a location every config touches).
    const Addr state = h.framework().logLayout().stateAddr;
    EXPECT_EQ(h.system().timingImage().read<std::uint64_t>(state),
              h.system().volatileImage().read<std::uint64_t>(state));
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, GridTest,
    ::testing::Combine(::testing::ValuesIn(kAllApps),
                       ::testing::ValuesIn(kAllConfigs)),
    [](const auto &info) {
        return std::string(appName(std::get<0>(info.param))) + "_" +
               std::string(configName(std::get<1>(info.param)));
    });

TEST(UnsafeConfigs, UnsafeOrderingIsObservable)
{
    // U removes every ordering: with enough independent updates the
    // fast element store overtakes the slow log persist.
    RunSpec spec;
    spec.txns = 4;
    spec.opsPerTxn = 25;
    WorkloadHarness h(AppId::Update, Config::U, spec);
    h.enableAudit();
    h.generate();
    h.simulate();
    const AuditReport report = h.audit();
    EXPECT_GT(report.violations, 0u)
        << "U should reorder updates ahead of log persists";
}

TEST(UnsafeConfigs, StoreBarrierGuaranteesNothingForPersists)
{
    // SU's DMB ST architecturally does not order DC CVAP (Section
    // II-A).  Our default models conservative hardware that stalls
    // anyway (audit comes out clean -- which is why the paper's SU
    // is only ~5% faster than B), but hardware exploiting the
    // architectural permission loses the undo-log invariant.
    RunSpec spec;
    spec.txns = 4;
    spec.opsPerTxn = 25;
    {
        WorkloadHarness h(AppId::Update, Config::SU, spec);
        h.enableAudit();
        h.generate();
        h.simulate();
        EXPECT_EQ(h.audit().violations, 0u)
            << "conservative LSQ timing should not reorder";
    }
    {
        SimParams aggressive = makeParams(Config::SU);
        aggressive.core.dmbStCoversCvap = false;
        WorkloadHarness h(AppId::Update, Config::SU, spec, AppParams{},
                          aggressive);
        h.enableAudit();
        h.generate();
        h.simulate();
        EXPECT_GT(h.audit().violations, 0u)
            << "an aggressive LSQ may expose the SU hazard";
    }
}

TEST(Figure9Shape, ConfigOrderingOnUpdateKernel)
{
    RunSpec spec;
    spec.txns = 20;
    spec.opsPerTxn = 25;
    std::map<Config, Cycle> cycles;
    for (Config cfg : kAllConfigs) {
        WorkloadHarness h(AppId::Update, cfg, spec);
        h.generate();
        h.simulate();
        cycles[cfg] = h.opPhaseCycles();
    }
    // The paper's ordering: B slowest, then SU (barely faster), then
    // IQ, then WB, with U the floor.  SU/B and WB/U run close; allow
    // a little noise on those.
    EXPECT_LE(cycles[Config::SU], cycles[Config::B] * 102 / 100);
    EXPECT_GT(cycles[Config::B], cycles[Config::IQ]);
    EXPECT_GT(cycles[Config::SU], cycles[Config::IQ]);
    EXPECT_GT(cycles[Config::IQ], cycles[Config::WB]);
    EXPECT_GE(cycles[Config::WB] * 102 / 100, cycles[Config::U]);
    EXPECT_GT(cycles[Config::B], cycles[Config::U] * 14 / 10)
        << "the B-to-U spread should be paper-sized (>1.4x)";
}

TEST(Figure9Shape, EdeRemovesFencesFromTheTrace)
{
    RunSpec spec;
    spec.txns = 2;
    spec.opsPerTxn = 10;
    WorkloadHarness hb(AppId::Swap, Config::B, spec);
    WorkloadHarness hw(AppId::Swap, Config::WB, spec);
    hb.generate();
    hw.generate();
    EXPECT_GT(hb.trace().fenceCount(), 20u); // One DSB per pWrite.
    // EDE leaves only the setup fence.
    EXPECT_LE(hw.trace().fenceCount(), 1u);
    EXPECT_GT(hw.trace().edeCount(), 0u);
}

TEST(Figure11Shape, EdeImprovesIssueThroughput)
{
    RunSpec spec;
    spec.txns = 4;
    spec.opsPerTxn = 20;
    WorkloadHarness hb(AppId::Update, Config::B, spec);
    WorkloadHarness hw(AppId::Update, Config::WB, spec);
    hb.generate();
    hw.generate();
    hb.simulate();
    hw.simulate();
    const double ipc_b = hb.system().core().stats().ipc();
    const double ipc_wb = hw.system().core().stats().ipc();
    EXPECT_GT(ipc_wb, ipc_b);
}

TEST(Figure10Shape, UnsafeKeepsNvmBufferFuller)
{
    // Long enough that media writes (and hence occupancy samples)
    // land during the run for every configuration.
    RunSpec spec;
    spec.txns = 20;
    spec.opsPerTxn = 25;
    WorkloadHarness hb(AppId::Update, Config::B, spec);
    WorkloadHarness hu(AppId::Update, Config::U, spec);
    hb.generate();
    hu.generate();
    hb.simulate();
    hu.simulate();
    const double mean_b =
        hb.system().mem().controller().nvm().occupancyDist().mean();
    const double mean_u =
        hu.system().mem().controller().nvm().occupancyDist().mean();
    EXPECT_GT(mean_u, mean_b);
}

} // namespace
} // namespace ede
