/**
 * @file
 * Unit tests for the ISA layer: opcode predicates, EDK rules, the
 * binary encoding, and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/encoding.hh"
#include "isa/inst.hh"

namespace ede {
namespace {

TEST(Edk, ZeroKeyIsNotReal)
{
    EXPECT_FALSE(edkIsReal(kZeroEdk));
    EXPECT_TRUE(edkIsValid(kZeroEdk));
    for (Edk k = 1; k < kNumEdks; ++k) {
        EXPECT_TRUE(edkIsReal(k));
        EXPECT_TRUE(edkIsValid(k));
    }
    EXPECT_FALSE(edkIsValid(16));
    EXPECT_FALSE(edkIsReal(16));
}

TEST(Opcodes, Predicates)
{
    EXPECT_TRUE(opIsLoad(Op::Ldr));
    EXPECT_TRUE(opIsStore(Op::Str));
    EXPECT_TRUE(opIsStore(Op::Stp));
    EXPECT_FALSE(opIsStore(Op::DcCvap));
    EXPECT_TRUE(opIsCvap(Op::DcCvap));
    EXPECT_TRUE(opIsMemRef(Op::Ldr));
    EXPECT_TRUE(opIsMemRef(Op::DcCvap));
    EXPECT_FALSE(opIsMemRef(Op::DsbSy));
    EXPECT_TRUE(opIsFence(Op::DsbSy));
    EXPECT_TRUE(opIsFence(Op::DmbSt));
    EXPECT_FALSE(opIsFence(Op::WaitKey));
    EXPECT_TRUE(opIsBranch(Op::Branch));
    EXPECT_TRUE(opIsBranch(Op::BranchCond));
    EXPECT_TRUE(opIsEdeControl(Op::Join));
    EXPECT_TRUE(opIsEdeControl(Op::WaitKey));
    EXPECT_TRUE(opIsEdeControl(Op::WaitAllKeys));
    EXPECT_FALSE(opIsEdeControl(Op::Str));
}

TEST(Opcodes, EdkOperandsAllowedOnlyWhereDefined)
{
    EXPECT_TRUE(opAllowsEdkOperands(Op::Str));
    EXPECT_TRUE(opAllowsEdkOperands(Op::Stp));
    EXPECT_TRUE(opAllowsEdkOperands(Op::DcCvap));
    EXPECT_TRUE(opAllowsEdkOperands(Op::Ldr));
    EXPECT_TRUE(opAllowsEdkOperands(Op::Join));
    EXPECT_FALSE(opAllowsEdkOperands(Op::IntAlu));
    EXPECT_FALSE(opAllowsEdkOperands(Op::DsbSy));
    EXPECT_FALSE(opAllowsEdkOperands(Op::Branch));
}

TEST(StaticInst, ProducerConsumerFlags)
{
    StaticInst si;
    si.op = Op::Str;
    EXPECT_FALSE(si.usesEde());
    si.edkDef = 3;
    EXPECT_TRUE(si.isEdeProducer());
    EXPECT_FALSE(si.isEdeConsumer());
    si.edkDef = kZeroEdk;
    si.edkUse = 1;
    EXPECT_FALSE(si.isEdeProducer());
    EXPECT_TRUE(si.isEdeConsumer());
    EXPECT_TRUE(si.usesEde());
}

TEST(StaticInst, ZeroRegWritesAreDiscarded)
{
    StaticInst si;
    si.op = Op::IntAlu;
    si.dst = kZeroReg;
    EXPECT_FALSE(si.writesReg());
    si.dst = 5;
    EXPECT_TRUE(si.writesReg());
    si.dst = kNoReg;
    EXPECT_FALSE(si.writesReg());
}

StaticInst
sampleStr()
{
    StaticInst si;
    si.op = Op::Str;
    si.src1 = 3;
    si.base = 0;
    si.size = 8;
    si.edkDef = 0;
    si.edkUse = 1;
    si.imm = -8;
    return si;
}

TEST(Encoding, RoundTripsEdeStore)
{
    const StaticInst si = sampleStr();
    const auto word = encode(si);
    ASSERT_TRUE(word.has_value());
    const auto back = decode(*word);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->op, Op::Str);
    EXPECT_EQ(back->src1, 3);
    EXPECT_EQ(back->base, 0);
    EXPECT_EQ(back->size, 8);
    EXPECT_EQ(back->edkUse, 1);
    EXPECT_EQ(back->imm, -8);
}

TEST(Encoding, RoundTripsEveryOpcode)
{
    for (int o = 0; o < kNumOps; ++o) {
        StaticInst si;
        si.op = static_cast<Op>(o);
        const auto word = encode(si);
        ASSERT_TRUE(word.has_value()) << "op " << o;
        const auto back = decode(*word);
        ASSERT_TRUE(back.has_value()) << "op " << o;
        EXPECT_EQ(back->op, si.op);
    }
}

TEST(Encoding, RoundTripsJoinWithThreeKeys)
{
    StaticInst si;
    si.op = Op::Join;
    si.edkDef = 15;
    si.edkUse = 7;
    si.edkUse2 = 9;
    const auto word = encode(si);
    ASSERT_TRUE(word.has_value());
    const auto back = decode(*word);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->edkDef, 15);
    EXPECT_EQ(back->edkUse, 7);
    EXPECT_EQ(back->edkUse2, 9);
}

TEST(Encoding, RejectsKeysOnPlainAlu)
{
    StaticInst si;
    si.op = Op::IntAlu;
    si.edkDef = 1;
    EXPECT_FALSE(encode(si).has_value());
}

TEST(Encoding, RejectsSecondUseKeyOutsideJoin)
{
    StaticInst si;
    si.op = Op::Str;
    si.edkUse2 = 2;
    EXPECT_FALSE(encode(si).has_value());
}

TEST(Encoding, RejectsImmediateOutOfRange)
{
    StaticInst si;
    si.op = Op::IntAlu;
    si.imm = 1ll << 30;
    EXPECT_FALSE(encode(si).has_value());
    si.imm = -(1ll << 30);
    EXPECT_FALSE(encode(si).has_value());
}

TEST(Encoding, ImmediateBoundaryValues)
{
    StaticInst si;
    si.op = Op::IntAlu;
    si.imm = (1ll << 20) - 1;
    auto word = encode(si);
    ASSERT_TRUE(word.has_value());
    EXPECT_EQ(decode(*word)->imm, (1ll << 20) - 1);
    si.imm = -(1ll << 20);
    word = encode(si);
    ASSERT_TRUE(word.has_value());
    EXPECT_EQ(decode(*word)->imm, -(1ll << 20));
}

TEST(Encoding, DecodeRejectsBadOpcode)
{
    EXPECT_FALSE(decode(0x3f).has_value());
}

TEST(Encoding, NoRegCanonicalizesToZeroReg)
{
    StaticInst si;
    si.op = Op::Mov;
    si.dst = 4;
    si.src1 = kNoReg;
    const auto back = decode(*encode(si));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->src1, kZeroReg);
}

TEST(Disasm, MatchesPaperSyntax)
{
    StaticInst si;
    si.op = Op::DcCvap;
    si.base = 2;
    si.edkDef = 1;
    EXPECT_EQ(disassemble(si), "dc cvap (1,0), x2");

    StaticInst st;
    st.op = Op::Str;
    st.src1 = 3;
    st.base = 0;
    st.edkUse = 1;
    EXPECT_EQ(disassemble(st), "str (0,1), x3, [x0]");

    StaticInst plain = st;
    plain.edkUse = 0;
    EXPECT_EQ(disassemble(plain), "str x3, [x0]");

    StaticInst join;
    join.op = Op::Join;
    join.edkDef = 3;
    join.edkUse = 1;
    join.edkUse2 = 2;
    EXPECT_EQ(disassemble(join), "join (3,1,2)");

    StaticInst wk;
    wk.op = Op::WaitKey;
    wk.edkUse = 4;
    EXPECT_EQ(disassemble(wk), "wait_key (4)");

    StaticInst dsb;
    dsb.op = Op::DsbSy;
    EXPECT_EQ(disassemble(dsb), "dsb sy");
}

TEST(Disasm, DynInstShowsAddressAndOutcome)
{
    DynInst di;
    di.si.op = Op::Ldr;
    di.si.dst = 1;
    di.si.base = 0;
    di.addr = 0x1000;
    const std::string s = disassemble(di);
    EXPECT_NE(s.find("addr=0x1000"), std::string::npos);

    DynInst br;
    br.si.op = Op::BranchCond;
    br.taken = true;
    EXPECT_NE(disassemble(br).find("taken"), std::string::npos);
}

TEST(DynInst, WriteBufferEntryPredicate)
{
    DynInst di;
    di.si.op = Op::Str;
    EXPECT_TRUE(di.entersWriteBuffer());
    di.si.op = Op::DcCvap;
    EXPECT_TRUE(di.entersWriteBuffer());
    di.si.op = Op::Join;
    EXPECT_TRUE(di.entersWriteBuffer());
    di.si.op = Op::Ldr;
    EXPECT_FALSE(di.entersWriteBuffer());
}

} // namespace
} // namespace ede
