/**
 * @file
 * Tests for the NVM/DRAM devices and the assembled hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"

namespace ede {
namespace {

// ---------------------------------------------------------------
// NvmDevice unit tests.
// ---------------------------------------------------------------

TEST(NvmDevice, CleanCompletesWhenBufferAccepts)
{
    NvmParams p;
    NvmDevice nvm(p);
    ASSERT_TRUE(nvm.tryAccept(MemReq{7, ReqKind::Clean, 0x100, 64}, 0));
    std::vector<MemResp> out;
    Cycle now = 0;
    while (out.empty() && now < 1000)
        nvm.tick(++now, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].id, 7u);
    EXPECT_EQ(out[0].kind, ReqKind::Clean);
    // Acceptance (persistence) is fast -- the media write happens
    // later in the background.
    EXPECT_LE(now, p.bufferAccept + 2);
    EXPECT_EQ(nvm.stats().cleansAccepted, 1u);
}

TEST(NvmDevice, WritesCoalesceIntoPendingLine)
{
    NvmDevice nvm;
    // Same 256-byte media line.
    nvm.tryAccept(MemReq{kNoReq, ReqKind::Writeback, 0x100, 64}, 0);
    nvm.tryAccept(MemReq{kNoReq, ReqKind::Writeback, 0x140, 64}, 0);
    EXPECT_EQ(nvm.bufferOccupancy(), 1u);
    EXPECT_EQ(nvm.stats().writesCoalesced, 1u);
    // A different media line occupies a second slot.
    nvm.tryAccept(MemReq{kNoReq, ReqKind::Writeback, 0x200, 64}, 0);
    EXPECT_EQ(nvm.bufferOccupancy(), 2u);
}

TEST(NvmDevice, BufferFullExertsBackpressure)
{
    NvmParams p;
    p.writeLatency = 1000000; // Keep the media busy forever.
    p.mediaWriters = 1;
    NvmDevice nvm(p);
    for (std::uint32_t i = 0; i < p.bufferSlots; ++i) {
        ASSERT_TRUE(nvm.tryAccept(
            MemReq{kNoReq, ReqKind::Writeback,
                   static_cast<Addr>(i) * 256, 64}, 0));
    }
    EXPECT_FALSE(nvm.tryAccept(
        MemReq{kNoReq, ReqKind::Writeback, 999 * 256, 64}, 0));
    EXPECT_EQ(nvm.stats().bufferFullRejects, 1u);
    // Coalescing into an existing line still works when full.
    EXPECT_TRUE(nvm.tryAccept(MemReq{kNoReq, ReqKind::Writeback, 0x40,
                                     64}, 0));
}

TEST(NvmDevice, MediaWriteTakesWriteLatencyAndSamplesOccupancy)
{
    NvmParams p;
    NvmDevice nvm(p);
    nvm.tryAccept(MemReq{kNoReq, ReqKind::Writeback, 0x0, 64}, 0);
    std::vector<MemResp> out;
    Cycle now = 0;
    while (!nvm.idle() && now < 10 * p.writeLatency)
        nvm.tick(++now, out);
    EXPECT_TRUE(nvm.idle());
    EXPECT_GE(now, p.writeLatency);
    EXPECT_EQ(nvm.stats().mediaWrites, 1u);
    EXPECT_EQ(nvm.occupancyDist().totalSamples(), 1u);
    EXPECT_EQ(nvm.occupancyDist().count(1), 1u); // One pending write.
}

TEST(NvmDevice, ReadLatencyIsAsymmetric)
{
    NvmParams p;
    NvmDevice nvm(p);
    nvm.tryAccept(MemReq{1, ReqKind::Read, 0x0, 64}, 0);
    std::vector<MemResp> out;
    Cycle now = 0;
    while (out.empty() && now < 10 * p.readLatency)
        nvm.tick(++now, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_GE(now, p.readLatency);
    EXPECT_LT(now, p.writeLatency);
}

TEST(NvmDevice, ReadsHitThePendingWriteBuffer)
{
    NvmParams p;
    NvmDevice nvm(p);
    nvm.tryAccept(MemReq{kNoReq, ReqKind::Writeback, 0x100, 64}, 0);
    nvm.tryAccept(MemReq{1, ReqKind::Read, 0x120, 64}, 0);
    std::vector<MemResp> out;
    Cycle now = 0;
    while (out.empty() && now < p.readLatency)
        nvm.tick(++now, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_LE(now, p.bufferReadHit + 2);
    EXPECT_EQ(nvm.stats().bufferReadHits, 1u);
}

TEST(NvmDevice, PersistHookFiresOnAcceptance)
{
    NvmDevice nvm;
    std::vector<Addr> persisted;
    std::vector<TraceIndex> origins;
    nvm.setPersistHook(
        [&](Addr a, std::uint32_t, Cycle, TraceIndex o, unsigned) {
            persisted.push_back(a);
            origins.push_back(o);
        });
    nvm.tryAccept(MemReq{1, ReqKind::Clean, 0x300, 64, 42}, 5);
    nvm.tryAccept(MemReq{kNoReq, ReqKind::Writeback, 0x400, 64}, 6);
    ASSERT_EQ(persisted.size(), 2u);
    EXPECT_EQ(persisted[0], 0x300u);
    EXPECT_EQ(origins[0], 42u);
    EXPECT_EQ(origins[1], kNoOrigin);
}

TEST(NvmDevice, CoalesceDuringMediaWriteReArmsTheSlot)
{
    // A write landing on a line already being pushed to the media
    // must re-arm the slot: otherwise the newer data would be lost.
    NvmParams p;
    p.mediaWriters = 1;
    NvmDevice nvm(p);
    std::vector<MemResp> out;
    Cycle now = 0;
    nvm.tryAccept(MemReq{kNoReq, ReqKind::Writeback, 0x0, 64}, now);
    // Let the media write start.
    for (int i = 0; i < 5; ++i)
        nvm.tick(++now, out);
    // Coalesce while writing.
    nvm.tryAccept(MemReq{kNoReq, ReqKind::Writeback, 0x40, 64}, now);
    EXPECT_EQ(nvm.bufferOccupancy(), 1u);
    while (!nvm.idle() && now < 10 * p.writeLatency)
        nvm.tick(++now, out);
    EXPECT_TRUE(nvm.idle());
    // The re-armed slot drained as one (merged) media write.
    EXPECT_EQ(nvm.stats().mediaWrites, 1u);
    EXPECT_EQ(nvm.stats().writesCoalesced, 1u);
}

TEST(NvmDevice, ReadQueueBackpressure)
{
    NvmParams p;
    p.readQueueDepth = 2;
    p.mediaReaders = 1;
    NvmDevice nvm(p);
    // Saturate the single reader and the queue.
    EXPECT_TRUE(nvm.tryAccept(MemReq{1, ReqKind::Read, 0x0, 64}, 0));
    std::vector<MemResp> out;
    nvm.tick(1, out); // First read occupies the port.
    EXPECT_TRUE(nvm.tryAccept(MemReq{2, ReqKind::Read, 0x400, 64}, 1));
    EXPECT_TRUE(nvm.tryAccept(MemReq{3, ReqKind::Read, 0x800, 64}, 1));
    EXPECT_FALSE(nvm.tryAccept(MemReq{4, ReqKind::Read, 0xc00, 64},
                               1));
}

TEST(MemSystemWarm, WarmLineMakesLoadsFast)
{
    MemSystem mem{MemSystemParams{}};
    mem.warmLine(0x123400, /*level=*/1);
    EXPECT_TRUE(mem.l1d().probe(0x123400));
    EXPECT_TRUE(mem.l2().probe(0x123400));
    EXPECT_TRUE(mem.l3().probe(0x123400));
    Cycle now = 0;
    const auto id = mem.sendLoad(0x123400, 8, now);
    ASSERT_TRUE(id.has_value());
    Cycle spent = 0;
    while (!mem.consumeDone(*id)) {
        mem.tick(now++);
        ASSERT_LT(++spent, 20u) << "warm load should hit L1";
    }
}

TEST(MemSystemWarm, LevelThreeWarmStopsAtL3)
{
    MemSystem mem{MemSystemParams{}};
    mem.warmLine(0x5000, /*level=*/3);
    EXPECT_FALSE(mem.l1d().probe(0x5000));
    EXPECT_FALSE(mem.l2().probe(0x5000));
    EXPECT_TRUE(mem.l3().probe(0x5000));
}

// ---------------------------------------------------------------
// DramDevice unit tests.
// ---------------------------------------------------------------

TEST(DramDevice, RowHitIsFasterThanRowMiss)
{
    DramParams p;
    auto run_one = [&](Addr a1, Addr a2) {
        DramDevice dram(p);
        std::vector<MemResp> out;
        Cycle now = 0;
        dram.tryAccept(MemReq{1, ReqKind::Read, a1, 64}, now);
        while (out.empty())
            dram.tick(++now, out);
        out.clear();
        dram.tryAccept(MemReq{2, ReqKind::Read, a2, 64}, now);
        const Cycle start = now;
        while (out.empty())
            dram.tick(++now, out);
        return now - start;
    };
    // Same row -> hit; same bank different row -> miss.
    const Cycle hit = run_one(0x0, 0x40);
    const Cycle miss = run_one(0x0, 0x40 + 2048ull * 32);
    EXPECT_LT(hit, miss);
}

TEST(DramDevice, QueueDepthLimitsAcceptance)
{
    DramParams p;
    p.queueDepth = 2;
    DramDevice dram(p);
    EXPECT_TRUE(dram.tryAccept(MemReq{1, ReqKind::Read, 0x0, 64}, 0));
    EXPECT_TRUE(dram.tryAccept(MemReq{2, ReqKind::Read, 0x40, 64}, 0));
    EXPECT_FALSE(dram.tryAccept(MemReq{3, ReqKind::Read, 0x80, 64}, 0));
}

TEST(DramDevice, DrainsToIdle)
{
    DramDevice dram;
    dram.tryAccept(MemReq{kNoReq, ReqKind::Writeback, 0x0, 64}, 0);
    dram.tryAccept(MemReq{1, ReqKind::Read, 0x4000, 64}, 0);
    std::vector<MemResp> out;
    Cycle now = 0;
    while (!dram.idle() && now < 100000)
        dram.tick(++now, out);
    EXPECT_TRUE(dram.idle());
    EXPECT_EQ(dram.stats().reads, 1u);
    EXPECT_EQ(dram.stats().writes, 1u);
}

// ---------------------------------------------------------------
// Full hierarchy.
// ---------------------------------------------------------------

struct MemSystemFixture : ::testing::Test
{
    MemSystemFixture() : mem(MemSystemParams{}) {}

    Cycle
    runUntilDone(ReqId id, Cycle limit = 100000)
    {
        while (!mem.consumeDone(id)) {
            mem.tick(now++);
            EXPECT_LT(now, limit) << "request " << id << " hung";
            if (now >= limit)
                return now;
        }
        return now;
    }

    MemSystem mem;
    Cycle now = 0;
};

TEST_F(MemSystemFixture, ColdDramLoadMissesAllLevels)
{
    const auto id = mem.sendLoad(0x10000, 8, now);
    ASSERT_TRUE(id.has_value());
    const Cycle done = runUntilDone(*id);
    // Must at least pay L1+L2+L3 latencies plus DRAM access.
    EXPECT_GT(done, 33u);
    EXPECT_EQ(mem.l1d().stats().misses, 1u);
}

TEST_F(MemSystemFixture, WarmLoadHitsL1)
{
    const auto id1 = mem.sendLoad(0x10000, 8, now);
    runUntilDone(*id1);
    const Cycle warm_start = now;
    const auto id2 = mem.sendLoad(0x10008, 8, now);
    const Cycle done = runUntilDone(*id2);
    EXPECT_LE(done - warm_start, 4u);
    EXPECT_EQ(mem.l1d().stats().hits, 1u);
}

TEST_F(MemSystemFixture, NvmLoadSlowerThanDramLoad)
{
    const Addr nvm_addr = mem.params().map.nvmBase() + 0x1000;
    const auto d = mem.sendLoad(0x20000, 8, now);
    const Cycle t0 = now;
    const Cycle dram_done = runUntilDone(*d) - t0;
    const Cycle t1 = now;
    const auto n = mem.sendLoad(nvm_addr, 8, now);
    const Cycle nvm_done = runUntilDone(*n) - t1;
    EXPECT_GT(nvm_done, dram_done);
    EXPECT_GE(nvm_done, mem.params().nvm.readLatency);
}

TEST_F(MemSystemFixture, CleanToNvmPersistsViaBuffer)
{
    const Addr nvm_addr = mem.params().map.nvmBase() + 0x40;
    const auto s = mem.sendStore(nvm_addr, 8, now);
    runUntilDone(*s);
    const auto c = mem.sendClean(nvm_addr, now);
    runUntilDone(*c);
    EXPECT_EQ(mem.controller().nvm().stats().cleansAccepted, 1u);
    // Run to idle: the media write completes in the background.
    while (!mem.idle() && now < 200000)
        mem.tick(now++);
    EXPECT_TRUE(mem.idle());
    EXPECT_GE(mem.controller().nvm().stats().mediaWrites, 1u);
}

TEST_F(MemSystemFixture, CleanToDramCompletesAtController)
{
    const auto c = mem.sendClean(0x30000, now);
    const Cycle t0 = now;
    const Cycle done = runUntilDone(*c) - t0;
    EXPECT_LT(done, mem.params().nvm.bufferAccept + 40);
    EXPECT_EQ(mem.controller().nvm().stats().cleansAccepted, 0u);
}

TEST_F(MemSystemFixture, StoreCompletesAtL1NotAtMemory)
{
    const auto s = mem.sendStore(0x40000, 8, now);
    const Cycle t0 = now;
    runUntilDone(*s);
    // Write-allocate: the fill costs DRAM latency, but nothing waits
    // for a memory write.
    EXPECT_TRUE(mem.l1d().probeDirty(0x40000));
    EXPECT_GT(now - t0, 0u);
}

TEST_F(MemSystemFixture, IdleAfterAllTraffic)
{
    const auto a = mem.sendLoad(0x1000, 8, now);
    const auto b = mem.sendStore(mem.params().map.nvmBase() + 0x80, 8,
                                 now);
    runUntilDone(*a);
    runUntilDone(*b);
    const auto c = mem.sendClean(mem.params().map.nvmBase() + 0x80,
                                 now);
    runUntilDone(*c);
    while (!mem.idle() && now < 500000)
        mem.tick(now++);
    EXPECT_TRUE(mem.idle());
}

} // namespace
} // namespace ede
