/**
 * @file
 * Unit tests for the functional memory image.
 */

#include <gtest/gtest.h>

#include "mem/memory_image.hh"

namespace ede {
namespace {

TEST(MemoryImage, ReadsZeroWhenUntouched)
{
    MemoryImage img;
    EXPECT_EQ(img.read<std::uint64_t>(0x1234), 0u);
    EXPECT_EQ(img.pageCount(), 0u);
}

TEST(MemoryImage, RoundTripsTypedValues)
{
    MemoryImage img;
    img.write<std::uint64_t>(0x1000, 0xdeadbeefcafef00dull);
    EXPECT_EQ(img.read<std::uint64_t>(0x1000), 0xdeadbeefcafef00dull);
    img.write<std::uint32_t>(0x2004, 77u);
    EXPECT_EQ(img.read<std::uint32_t>(0x2004), 77u);
}

TEST(MemoryImage, HandlesPageStraddlingAccesses)
{
    MemoryImage img;
    // A page is 4 KiB; write across the boundary.
    const Addr addr = 0x1ffc;
    img.write<std::uint64_t>(addr, 0x1122334455667788ull);
    EXPECT_EQ(img.read<std::uint64_t>(addr), 0x1122334455667788ull);
    EXPECT_EQ(img.pageCount(), 2u);
}

TEST(MemoryImage, PartialOverwriteKeepsNeighbours)
{
    MemoryImage img;
    img.write<std::uint64_t>(0x100, ~0ull);
    img.write<std::uint8_t>(0x104, 0);
    EXPECT_EQ(img.read<std::uint8_t>(0x103), 0xff);
    EXPECT_EQ(img.read<std::uint8_t>(0x104), 0x00);
    EXPECT_EQ(img.read<std::uint8_t>(0x105), 0xff);
}

TEST(MemoryImage, BulkReadWrite)
{
    MemoryImage img;
    std::vector<std::uint8_t> out(10000);
    std::vector<std::uint8_t> in(10000);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<std::uint8_t>(i * 7);
    img.write(0x8000, in.data(), in.size());
    img.read(0x8000, out.data(), out.size());
    EXPECT_EQ(in, out);
}

TEST(MemoryImage, CopyRangeBetweenImages)
{
    MemoryImage src;
    MemoryImage dst;
    src.write<std::uint64_t>(0x40, 99);
    src.write<std::uint64_t>(0x48, 100);
    dst.write<std::uint64_t>(0x40, 1);
    dst.copyRange(src, 0x40, 16);
    EXPECT_EQ(dst.read<std::uint64_t>(0x40), 99u);
    EXPECT_EQ(dst.read<std::uint64_t>(0x48), 100u);
}

TEST(MemoryImage, CopyRangeFromUntouchedSourceZeroes)
{
    MemoryImage src;
    MemoryImage dst;
    dst.write<std::uint64_t>(0x40, 7);
    dst.copyRange(src, 0x40, 8);
    EXPECT_EQ(dst.read<std::uint64_t>(0x40), 0u);
}

TEST(MemoryImage, ClearDropsContents)
{
    MemoryImage img;
    img.write<std::uint64_t>(0x10, 5);
    img.clear();
    EXPECT_EQ(img.read<std::uint64_t>(0x10), 0u);
    EXPECT_EQ(img.pageCount(), 0u);
}

TEST(MemoryImage, HighAddressesWork)
{
    MemoryImage img;
    const Addr nvm = (2ull << 30) + 0x123450;
    img.write<std::uint64_t>(nvm, 42);
    EXPECT_EQ(img.read<std::uint64_t>(nvm), 42u);
}

} // namespace
} // namespace ede
