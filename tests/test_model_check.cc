/**
 * @file
 * Durable-set model-checker tests.
 *
 * Three layers: closed-form lattice mathematics on hand-built graphs
 * (order-ideal counts, crash-window pruning, drain budgets), checker
 * semantics on real micro runs (dedup soundness, seeded-bug
 * sensitivity, shrink minimality), and the cross-validations tying
 * the checker to the sampling fault campaign (every sampled crash
 * image lies inside the enumerated lattice; the generalized frontier
 * tear really does move off the last accepted event).
 */

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "apps/harness.hh"
#include "fault/crash_image.hh"
#include "fault/model_check/checker.hh"

namespace ede {
namespace {

/* ------------------------------------------------------------------ */
/* Hand-built graphs: closed-form order-ideal counts.                  */
/* ------------------------------------------------------------------ */

using Edge = std::pair<std::size_t, std::size_t>;

/**
 * A graph of @p n nodes on distinct 256 B media lines with strictly
 * increasing accept cycles (100, 110, ...) and the given pred -> succ
 * edges.  mediaCycle stays kNoCycle unless the test sets it.
 */
PersistOrderGraph
handGraph(std::size_t n, const std::vector<Edge> &edges)
{
    PersistOrderGraph g;
    g.nodes.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        g.nodes[i].addr = 0x10000 + 256 * i;
        g.nodes[i].size = 64;
        g.nodes[i].accept = 100 + 10 * i;
    }
    for (const Edge &e : edges)
        g.nodes[e.second].preds.push_back(e.first);
    g.finalize();
    return g;
}

/** Collect every enumerated durable set (as sorted index vectors). */
std::vector<std::vector<std::size_t>>
collectSets(const PersistOrderGraph &g, const EnumerationLimits &lim,
            EnumerationStats *statsOut = nullptr)
{
    std::vector<std::vector<std::size_t>> sets;
    const EnumerationStats stats = forEachDurableSet(
        g, lim, [&](const DurableSetView &view) {
            sets.push_back(view.postSetup);
            return true;
        });
    if (statsOut)
        *statsOut = stats;
    return sets;
}

TEST(ModelCheckEnumerate, ClosedFormIdealCounts)
{
    // A chain of k nodes has exactly k+1 ideals (its prefixes).
    EXPECT_EQ(countOrderIdeals(handGraph(
                  5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}})),
              6u);

    // An antichain of n nodes has 2^n ideals (any subset).
    EXPECT_EQ(countOrderIdeals(handGraph(10, {})), 1u << 10);

    // The diamond 0 < {1, 2} < 3 has 6:
    // {}, {0}, {01}, {02}, {012}, {0123}.
    EXPECT_EQ(countOrderIdeals(handGraph(
                  4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}})),
              6u);

    // Two independent 2-chains: ideals multiply, 3 * 3.
    EXPECT_EQ(countOrderIdeals(handGraph(4, {{0, 2}, {1, 3}})), 9u);

    // The empty run has exactly the empty durable set.
    EXPECT_EQ(countOrderIdeals(handGraph(0, {})), 1u);
}

TEST(ModelCheckEnumerate, EnumeratedSetsAreDistinctClosedAndLegal)
{
    const PersistOrderGraph g =
        handGraph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
    EnumerationStats stats;
    const auto sets = collectSets(g, {}, &stats);
    EXPECT_EQ(stats.states, 6u);
    EXPECT_FALSE(stats.truncated);
    EXPECT_EQ(stats.rejectedBudget, 0u);

    std::set<std::vector<std::size_t>> distinct(sets.begin(),
                                                sets.end());
    EXPECT_EQ(distinct.size(), sets.size());
    for (const auto &s : sets) {
        EXPECT_TRUE(isLegalDurableSet(g, FaultPlan::kDrainAll, s));
        // Downward closure, checked directly against the edge list.
        const std::set<std::size_t> in(s.begin(), s.end());
        for (std::size_t i : s) {
            for (std::size_t p : g.nodes[i].preds)
                EXPECT_TRUE(in.count(p))
                    << "pred " << p << " of " << i << " missing";
        }
    }
}

TEST(ModelCheckEnumerate, CrashWindowPrunesTheLattice)
{
    // Three unordered events; event 0's media line completes at
    // cycle 115, between accept(1)=110 and accept(2)=120.  Any crash
    // late enough to have accepted event 2 has already made event 0
    // durable, so {2} and {1,2} are unreachable: 6 of the 8 subsets.
    PersistOrderGraph g = handGraph(3, {});
    g.nodes[0].mediaCycle = 115;
    g.finalize();

    EnumerationStats stats;
    const auto sets = collectSets(g, {}, &stats);
    EXPECT_EQ(stats.states, 6u);

    EXPECT_FALSE(isLegalDurableSet(g, FaultPlan::kDrainAll, {2}));
    EXPECT_FALSE(isLegalDurableSet(g, FaultPlan::kDrainAll, {1, 2}));
    EXPECT_TRUE(isLegalDurableSet(g, FaultPlan::kDrainAll, {0, 2}));
    for (const auto &s : sets)
        EXPECT_TRUE(isLegalDurableSet(g, FaultPlan::kDrainAll, s));
}

TEST(ModelCheckEnumerate, DrainBudgetRejectsWideFrontiers)
{
    // Two pending events on distinct media lines: a 1-line drain
    // cannot save both, so {0,1} is infeasible.
    const PersistOrderGraph distinct = handGraph(2, {});
    EnumerationLimits lim;
    lim.drainLines = 1;
    EnumerationStats stats;
    const auto sets = collectSets(distinct, lim, &stats);
    EXPECT_EQ(stats.states, 3u);
    EXPECT_EQ(stats.rejectedBudget, 1u);
    EXPECT_FALSE(isLegalDurableSet(distinct, 1, {0, 1}));
    EXPECT_TRUE(isLegalDurableSet(distinct, 2, {0, 1}));

    // The same two events on ONE media line coalesce into a single
    // drain slot, so even budget 1 admits the full set.
    PersistOrderGraph same = handGraph(2, {{0, 1}});
    same.nodes[1].addr = same.nodes[0].addr + 64;
    same.finalize();
    EnumerationStats sameStats;
    const auto sameSets = collectSets(same, lim, &sameStats);
    EXPECT_EQ(sameStats.states, 3u);
    EXPECT_EQ(sameStats.rejectedBudget, 0u);
    EXPECT_TRUE(isLegalDurableSet(same, 1, {0, 1}));
}

TEST(ModelCheckEnumerate, MaxStatesTruncatesDeterministically)
{
    const PersistOrderGraph g = handGraph(10, {});
    EnumerationLimits lim;
    lim.maxStates = 100;
    EnumerationStats stats;
    const auto first = collectSets(g, lim, &stats);
    EXPECT_EQ(stats.states, 100u);
    EXPECT_TRUE(stats.truncated);

    // The bound is a prefix of one deterministic search order.
    const auto second = collectSets(g, lim);
    EXPECT_EQ(first, second);

    EnumerationLimits full;
    EnumerationStats fullStats;
    const auto all = collectSets(g, full, &fullStats);
    EXPECT_EQ(fullStats.states, 1u << 10);
    EXPECT_FALSE(fullStats.truncated);
    EXPECT_TRUE(std::equal(first.begin(), first.end(), all.begin()));
}

/* ------------------------------------------------------------------ */
/* Real micro runs.                                                    */
/* ------------------------------------------------------------------ */

RunSpec
microSpec()
{
    RunSpec spec;
    spec.txns = 2;
    spec.opsPerTxn = 2;
    spec.seed = 42;
    return spec;
}

AppParams
microParams()
{
    AppParams params;
    params.seed = 42;
    params.arrayLen = 64;
    return params;
}

/** Audited micro run, optionally with the seeded EDK-deletion bug. */
std::unique_ptr<WorkloadHarness>
microRun(Config cfg, bool seedBug = false,
         std::size_t *bugIdx = nullptr)
{
    auto h = std::make_unique<WorkloadHarness>(
        AppId::Update, cfg, microSpec(), microParams());
    h->enableAudit();
    h->generate();
    if (seedBug) {
        const std::size_t idx = seedMissingEdkBug(*h);
        if (bugIdx)
            *bugIdx = idx;
    }
    h->simulate();
    return h;
}

ModelCheckOptions
microOptions()
{
    ModelCheckOptions opts;
    opts.app = AppId::Update;
    opts.seed = 7;
    opts.spec = microSpec();
    opts.appParams = microParams();
    opts.maxStates = 20000;
    return opts;
}

TEST(ModelCheck, IntactConfigsVerifyClean)
{
    const ModelCheckReport report = runModelCheck(microOptions());
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report.quarantined.empty());
    ASSERT_EQ(report.configs.size(), 3u);
    for (const ModelCheckConfigResult &r : report.configs) {
        EXPECT_EQ(r.violations, 0u) << configName(r.config);
        EXPECT_TRUE(r.counterexamples.empty());
        EXPECT_FALSE(r.truncated);
        EXPECT_EQ(r.seededBugTraceIdx, kNoEvent);
        // The pipeline never produces forward edges; the graph must
        // not have dropped any.
        EXPECT_EQ(r.orderStats.nonmonotone, 0u);
        EXPECT_GT(r.orderStats.total(), 0u);
        EXPECT_GT(r.states, 1u);
        EXPECT_GT(r.tornVariants, 0u);
        EXPECT_GE(r.uniqueImages, 1u);
        EXPECT_EQ(r.recoveredClean, r.uniqueImages);
    }
    // Fences dominate ordering in B; EDE configurations replace them
    // with line gates (the framework puts the EDK use on the data
    // store, whose ordering the gate carries onto the line's
    // persists).
    EXPECT_GT(report.configs[0].orderStats.fence, 0u);
    EXPECT_GT(report.configs[1].orderStats.lineGate, 0u);
    EXPECT_LT(report.configs[1].orderStats.fence,
              report.configs[0].orderStats.fence);
}

TEST(ModelCheck, SeededBugIsDetectedAndShrunk)
{
    ModelCheckOptions opts = microOptions();
    opts.seedBug = true;
    const ModelCheckReport report = runModelCheck(opts);

    // ok() under seedBug means: planted bugs DETECTED, unaffected
    // configurations still clean.
    EXPECT_TRUE(report.ok());
    ASSERT_EQ(report.configs.size(), 3u);

    const ModelCheckConfigResult &b = report.configs[0];
    EXPECT_EQ(b.config, Config::B);
    // B orders through DSB SY, not EDKs: nothing to delete, still
    // clean.
    EXPECT_EQ(b.seededBugTraceIdx, kNoEvent);
    EXPECT_EQ(b.violations, 0u);

    for (std::size_t i = 1; i < 3; ++i) {
        const ModelCheckConfigResult &r = report.configs[i];
        EXPECT_NE(r.seededBugTraceIdx, kNoEvent)
            << configName(r.config);
        EXPECT_GT(r.violations, 0u) << configName(r.config);
        ASSERT_FALSE(r.counterexamples.empty())
            << configName(r.config);
        for (const ModelCheckCounterexample &cex : r.counterexamples) {
            // Data durable without its undo entry: recovery cannot
            // roll the half-committed transaction back.
            EXPECT_EQ(cex.invariant, "active-rollback-failed");
            EXPECT_FALSE(cex.durable.empty());
            // Shrunk: far below the full lattice frontier.
            EXPECT_LE(cex.durable.size(), 3u);
        }
    }
}

TEST(ModelCheck, CounterexamplesReproduceAndAreMinimal)
{
    ModelCheckOptions opts = microOptions();
    opts.seedBug = true;
    opts.configs = {Config::IQ};
    const ModelCheckReport report = runModelCheck(opts);
    ASSERT_EQ(report.configs.size(), 1u);
    ASSERT_FALSE(report.configs[0].counterexamples.empty());

    // Re-simulate the identical bugged run and replay the reported
    // counterexamples through a fresh checker.
    std::size_t bugIdx = kNoEvent;
    auto h = microRun(Config::IQ, /*seedBug=*/true, &bugIdx);
    ASSERT_EQ(bugIdx, report.configs[0].seededBugTraceIdx);
    const PersistOrderGraph graph = buildPersistOrder(*h);
    DurableSetChecker checker(*h, graph);

    for (const ModelCheckCounterexample &cex :
         report.configs[0].counterexamples) {
        const DurableSetChecker::StateVerdict v =
            checker.check(cex.durable, cex.tornIdx, cex.tornMask);
        ASSERT_FALSE(v.duplicate);
        ASSERT_NE(v.invariant, nullptr);
        EXPECT_EQ(cex.invariant, v.invariant);
        EXPECT_EQ(cex.imageHash, v.imageHash);

        // 1-minimality: dropping any single event (where legality
        // permits) must lose the violation.  The shrinker runs to a
        // fixpoint, so this is exactly what it guarantees -- except
        // for the torn event itself, which it keeps by construction.
        for (std::size_t k = 0; k < cex.durable.size(); ++k) {
            if (cex.durable[k] == cex.tornIdx)
                continue;
            std::vector<std::size_t> sub = cex.durable;
            sub.erase(sub.begin() + static_cast<std::ptrdiff_t>(k));
            if (!isLegalDurableSet(graph, FaultPlan::kDrainAll, sub))
                continue;
            DurableSetChecker probe(*h, graph);
            const auto pv =
                probe.check(sub, cex.tornIdx, cex.tornMask);
            EXPECT_FALSE(pv.invariant &&
                         cex.invariant == pv.invariant)
                << "removing event " << cex.durable[k]
                << " still violates: not minimal";
        }
    }

    // The empty durable state (setup only) recovers clean.
    DurableSetChecker empty(*h, graph);
    const auto ev = empty.check({});
    EXPECT_FALSE(ev.duplicate);
    EXPECT_EQ(ev.invariant, nullptr);
}

TEST(ModelCheck, DedupNeverMergesDistinctImages)
{
    auto h = microRun(Config::IQ);
    const PersistOrderGraph graph = buildPersistOrder(*h);
    DurableSetChecker checker(*h, graph);

    // Materialize every durable set plus its torn variants and keep
    // the (hash, image) pairs.
    std::vector<std::pair<std::uint64_t, MemoryImage>> images;
    forEachDurableSet(graph, {}, [&](const DurableSetView &view) {
        MemoryImage img = checker.materialize(view.postSetup);
        images.emplace_back(img.canonicalContentHash(),
                            std::move(img));
        for (std::size_t cand :
             checker.tornCandidates(view.postSetup, 2)) {
            MemoryImage torn =
                checker.materialize(view.postSetup, cand, 0x1);
            images.emplace_back(torn.canonicalContentHash(),
                                std::move(torn));
        }
        return true;
    });
    ASSERT_GT(images.size(), 10u);

    // Equal hash <=> equal content, across every pair: the dedup that
    // collapses states to uniqueImages never merges distinct images.
    for (std::size_t i = 0; i < images.size(); ++i) {
        for (std::size_t j = i + 1; j < images.size(); ++j) {
            const bool sameHash = images[i].first == images[j].first;
            const bool sameContent =
                images[i].second.contentEquals(images[j].second);
            EXPECT_EQ(sameHash, sameContent)
                << "pair (" << i << ", " << j << ")";
        }
    }
}

TEST(ModelCheck, WaitEdgesCoverAllProducersUnderAcceptInversion)
{
    // At txns=4, ops=6 the WB write buffer accepts two successive
    // kData definitions out of program order (hot-line coalescing),
    // severing the key-chain shortcut between them.  The WAIT_KEY
    // commit barrier tracks EVERY outstanding cvap of the key
    // (WaitCounters), so the graph must order all of them before the
    // commit sequence -- modeling only the newest definition lets
    // the enumerator fabricate a torn-data-behind-commit state the
    // hardware forbids, which is exactly the regression this guards.
    ModelCheckOptions opts = microOptions();
    opts.spec.txns = 4;
    opts.spec.opsPerTxn = 6;
    opts.maxStates = 500000;
    const ModelCheckReport report = runModelCheck(opts);
    EXPECT_TRUE(report.ok());
    ASSERT_EQ(report.configs.size(), 3u);
    for (const ModelCheckConfigResult &r : report.configs) {
        EXPECT_EQ(r.violations, 0u) << configName(r.config);
        EXPECT_FALSE(r.truncated) << configName(r.config);
    }
}

/* ------------------------------------------------------------------ */
/* Cross-validation against the sampling fault campaign.               */
/* ------------------------------------------------------------------ */

TEST(ModelCheck, CampaignImagesLieInsideTheLattice)
{
    for (Config cfg : {Config::B, Config::IQ, Config::WB}) {
        auto h = microRun(cfg);
        const PersistOrderGraph graph = buildPersistOrder(*h);
        const DurableSetChecker checker(*h, graph);
        const auto &events = h->system().persistEvents();
        const auto &media = h->system().mediaWriteEvents();
        ASSERT_FALSE(events.empty());

        // Crash at and just after every post-setup accept, under a
        // spread of plans (perfect and failing ADR, every tear kind).
        std::set<Cycle> crashes;
        for (const PersistEvent &ev : events) {
            if (ev.cycle < h->setupCompleteCycle())
                continue;
            crashes.insert(ev.cycle);
            crashes.insert(ev.cycle + 1);
        }
        std::vector<FaultPlan> plans;
        for (std::uint32_t drain : {FaultPlan::kDrainAll, 2u, 1u}) {
            for (TearKind tear :
                 {TearKind::None, TearKind::Prefix, TearKind::Suffix,
                  TearKind::Interleaved}) {
                FaultPlan plan;
                plan.seed = 0x5eedull + plans.size();
                plan.drainLines = drain;
                plan.tear = tear;
                plans.push_back(plan);
            }
        }

        std::size_t checkedImages = 0;
        for (Cycle crash : crashes) {
            for (const FaultPlan &plan : plans) {
                MemoryImage img = h->baselineNvm();
                const FaultyImageReport rep = applyFaultyPersistEvents(
                    img, events, media, crash, plan, 256, &graph);
                ASSERT_GE(rep.durableCount, graph.preSetupCount);

                // The sampled durable set, as the model checker
                // names it: post-setup indices only.
                std::vector<std::size_t> postSetup;
                for (std::size_t i = graph.preSetupCount;
                     i < rep.durableCount; ++i)
                    postSetup.push_back(i);

                // Contained in the lattice under the same budget...
                EXPECT_TRUE(isLegalDurableSet(graph, plan.drainLines,
                                              postSetup))
                    << configName(cfg) << " crash=" << crash;

                // ...and byte-identical when re-materialized through
                // the checker's path.
                const std::size_t torn =
                    rep.tore ? rep.tornIdx : kNoEvent;
                const MemoryImage remat = checker.materialize(
                    postSetup, torn, rep.tornMask);
                EXPECT_TRUE(remat.contentEquals(img))
                    << configName(cfg) << " crash=" << crash
                    << " tear=" << tearKindName(plan.tear)
                    << " drain=" << plan.drainLines;
                ++checkedImages;
            }
        }
        EXPECT_GT(checkedImages, 100u) << configName(cfg);
    }
}

TEST(ModelCheck, FrontierTearGeneralizesBeyondTheLastEvent)
{
    auto h = microRun(Config::IQ);
    const PersistOrderGraph graph = buildPersistOrder(*h);
    const auto &events = h->system().persistEvents();
    const auto &media = h->system().mediaWriteEvents();

    // Recompute the frontier-candidate set the image builder uses so
    // the test can find a crash cycle with a real choice to make.
    const Addr cacheMask = ~static_cast<Addr>(63);
    auto candidatesAt = [&](Cycle crash) {
        std::size_t cut = 0;
        while (cut < events.size() && events[cut].cycle <= crash)
            ++cut;
        std::unordered_map<Addr, std::size_t> lastOfLine;
        for (std::size_t i = 0; i < cut; ++i)
            lastOfLine[events[i].addr & cacheMask] = i;
        std::vector<std::size_t> out;
        for (std::size_t i = 0; i < cut; ++i) {
            const PersistNode &node = graph.nodes[i];
            if (node.size <= 8)
                continue;
            if (node.mediaCycle != kNoCycle &&
                node.mediaCycle <= crash)
                continue;  // Already on media: cannot tear.
            if (graph.minSucc[i] < cut)
                continue;  // A durable successor pins it whole.
            if (lastOfLine[events[i].addr & cacheMask] != i)
                continue;  // A younger write overwrites the tear.
            out.push_back(i);
        }
        return std::make_pair(cut, out);
    };

    Cycle crash = kNoCycle;
    std::size_t cut = 0;
    for (const PersistEvent &ev : events) {
        const auto [c, cands] = candidatesAt(ev.cycle);
        if (cands.size() >= 2) {
            crash = ev.cycle;
            cut = c;
            break;
        }
    }
    ASSERT_NE(crash, kNoCycle)
        << "no crash cycle with multiple frontier candidates; the "
           "generalized tear would never differ from the old one";

    std::set<std::size_t> seen;
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        FaultPlan plan;
        plan.seed = seed;
        plan.tear = TearKind::Prefix;

        MemoryImage img = h->baselineNvm();
        const FaultyImageReport rep = applyFaultyPersistEvents(
            img, events, media, crash, plan, 256, &graph);
        ASSERT_TRUE(rep.tore);
        ASSERT_EQ(rep.durableCount, cut);
        seen.insert(rep.tornIdx);

        // Whatever was picked is a genuine frontier event...
        EXPECT_GE(graph.minSucc[rep.tornIdx], cut);
        EXPECT_GT(events[rep.tornIdx].size, 8u);

        // ...while the order-blind path still tears only the last.
        MemoryImage legacy = h->baselineNvm();
        const FaultyImageReport old = applyFaultyPersistEvents(
            legacy, events, media, crash, plan, 256, nullptr);
        EXPECT_EQ(old.tornIdx, cut - 1);
    }
    // The seed really selects among candidates: several distinct
    // picks, at least one off the last accepted event.
    EXPECT_GE(seen.size(), 2u);
    EXPECT_TRUE(seen.count(cut - 1) == 0 || seen.size() > 1);
    bool offLast = false;
    for (std::size_t idx : seen)
        offLast |= idx != cut - 1;
    EXPECT_TRUE(offLast);
}

/* ------------------------------------------------------------------ */
/* Wire format and isolation plumbing.                                 */
/* ------------------------------------------------------------------ */

void
expectResultEq(const ModelCheckConfigResult &a,
               const ModelCheckConfigResult &b)
{
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.freeEvents, b.freeEvents);
    EXPECT_EQ(a.orderStats.sameLine, b.orderStats.sameLine);
    EXPECT_EQ(a.orderStats.edk, b.orderStats.edk);
    EXPECT_EQ(a.orderStats.keyChain, b.orderStats.keyChain);
    EXPECT_EQ(a.orderStats.fence, b.orderStats.fence);
    EXPECT_EQ(a.orderStats.lineGate, b.orderStats.lineGate);
    EXPECT_EQ(a.orderStats.nonmonotone, b.orderStats.nonmonotone);
    EXPECT_EQ(a.states, b.states);
    EXPECT_EQ(a.rejectedBudget, b.rejectedBudget);
    EXPECT_EQ(a.tornVariants, b.tornVariants);
    EXPECT_EQ(a.uniqueImages, b.uniqueImages);
    EXPECT_EQ(a.recoveredClean, b.recoveredClean);
    EXPECT_EQ(a.tornLogDetected, b.tornLogDetected);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.truncated, b.truncated);
    EXPECT_EQ(a.seededBugTraceIdx, b.seededBugTraceIdx);
    ASSERT_EQ(a.counterexamples.size(), b.counterexamples.size());
    for (std::size_t i = 0; i < a.counterexamples.size(); ++i) {
        const auto &ca = a.counterexamples[i];
        const auto &cb = b.counterexamples[i];
        EXPECT_EQ(ca.invariant, cb.invariant);
        EXPECT_EQ(ca.durable, cb.durable);
        EXPECT_EQ(ca.tornIdx, cb.tornIdx);
        EXPECT_EQ(ca.tornMask, cb.tornMask);
        EXPECT_EQ(ca.imageHash, cb.imageHash);
        EXPECT_EQ(ca.rollbackTargets, cb.rollbackTargets);
    }
}

TEST(ModelCheck, WireFormatRoundTrips)
{
    // A result with counterexamples (the hardest payload) from a
    // real seeded-bug run.
    ModelCheckOptions opts = microOptions();
    opts.seedBug = true;
    opts.configs = {Config::WB};
    const ModelCheckReport report = runModelCheck(opts);
    ASSERT_EQ(report.configs.size(), 1u);
    ASSERT_FALSE(report.configs[0].counterexamples.empty());

    const std::string wire =
        serializeModelCheckResult(report.configs[0]);
    const auto back = deserializeModelCheckResult(wire);
    ASSERT_TRUE(back.has_value());
    expectResultEq(report.configs[0], *back);

    EXPECT_FALSE(deserializeModelCheckResult("").has_value());
    EXPECT_FALSE(deserializeModelCheckResult("garbage\n").has_value());
}

TEST(ModelCheck, SweepIdCoversTheSearchParameters)
{
    const ModelCheckOptions base = microOptions();
    const std::uint64_t id = modelCheckSweepId(base);

    ModelCheckOptions mut = base;
    mut.maxStates += 1;
    EXPECT_NE(modelCheckSweepId(mut), id);
    mut = base;
    mut.seedBug = true;
    EXPECT_NE(modelCheckSweepId(mut), id);
    mut = base;
    mut.drainLines = 3;
    EXPECT_NE(modelCheckSweepId(mut), id);
    mut = base;
    mut.configs = {Config::B};
    EXPECT_NE(modelCheckSweepId(mut), id);

    // Isolation knobs do not change the experiment's identity.
    mut = base;
    mut.isolate = true;
    mut.jobs = 4;
    EXPECT_EQ(modelCheckSweepId(mut), id);
}

TEST(ModelCheck, ChaosCrashQuarantinesTheConfig)
{
    ModelCheckOptions opts = microOptions();
    opts.configs = {Config::B, Config::IQ};
    opts.isolate = true;
    opts.retry.maxAttempts = 2;
    opts.retry.backoffBaseMs = 1;
    opts.retry.backoffMaxMs = 2;
    opts.chaosCrashConfig = "IQ";
    const ModelCheckReport report = runModelCheck(opts);

    EXPECT_FALSE(report.ok());
    ASSERT_EQ(report.quarantined.size(), 1u);
    EXPECT_EQ(report.quarantined[0].config, Config::IQ);
    ASSERT_EQ(report.configs.size(), 1u);
    EXPECT_EQ(report.configs[0].config, Config::B);
    EXPECT_EQ(report.configs[0].violations, 0u);
}

} // namespace
} // namespace ede
