/**
 * @file
 * Tests for the overload-control layer (src/traffic/overload.*,
 * src/traffic/policy.*).
 *
 * The policy engine is exercised two ways:
 *
 *  - directly, on hand-built per-core job lists with hand-computed
 *    expected schedules -- the deadline-miss boundary (strict
 *    inequality), the token-bucket refill edge (1023 vs 1024
 *    accumulated token-units), retry-budget exhaustion, and the full
 *    degradation ladder walk up to reject-all and hysteretically
 *    back down;
 *  - end to end through Session / the experiment layer, where the
 *    determinism contract is the point: policy-enabled cells must
 *    serialize byte-identically across --jobs counts and both
 *    tickers, and offered == completed + failures must hold under
 *    retries and closed-pool arrivals alike.
 */

#include <gtest/gtest.h>

#include <vector>

#include "exp/result_cache.hh"
#include "exp/runner.hh"
#include "exp/sink.hh"
#include "sim/session.hh"
#include "traffic/overload.hh"
#include "traffic/policy.hh"

namespace ede {
namespace {

using traffic::AdmissionKind;
using traffic::ArrivalKind;
using traffic::BackpressureSignal;
using traffic::OverloadJob;
using traffic::OverloadPolicy;
using traffic::OverloadResult;
using traffic::ReplayOutput;
using traffic::TrafficPlan;
using traffic::TxnKind;

// ---------------------------------------------------------------- //
// Backpressure
// ---------------------------------------------------------------- //

TEST(EffectiveQueueDepth, ScalesWithPressureAndNeverHitsZero)
{
    OverloadPolicy pol;
    pol.queueDepth = 16;
    // No pressure: the configured depth.
    EXPECT_EQ(traffic::effectiveQueueDepth(pol, {}), 16u);
    // Saturated (occupancy + rejects capped at 1000 permille):
    // 16 * 200 / 1200 = 2.
    BackpressureSignal hot;
    hot.occupancyPermille = 600;
    hot.rejectPermille = 600;
    EXPECT_EQ(traffic::effectiveQueueDepth(pol, hot), 2u);
    // A depth-1 queue stays serviceable under any pressure.
    pol.queueDepth = 1;
    EXPECT_EQ(traffic::effectiveQueueDepth(pol, hot), 1u);
}

// ---------------------------------------------------------------- //
// Hand-built replays
// ---------------------------------------------------------------- //

OverloadJob
job(unsigned stream, std::uint32_t index, Cycle arrival, Cycle service,
    TxnKind kind = TxnKind::Read)
{
    OverloadJob j;
    j.stream = stream;
    j.core = 0;
    j.index = index;
    j.kind = kind;
    j.arrival = arrival;
    j.service = service;
    return j;
}

/** An open-arrival plan matching hand-built single-core job lists. */
TrafficPlan
handPlan(unsigned streams, const OverloadPolicy &pol)
{
    TrafficPlan plan;
    plan.streams = streams;
    plan.policy = pol;
    return plan;
}

ReplayOutput
replay(const std::vector<OverloadJob> &jobs, const OverloadPolicy &pol,
       unsigned streams = 1, BackpressureSignal signal = {})
{
    return traffic::replayOverload(handPlan(streams, pol), {jobs},
                                   pol, signal);
}

TEST(ReplayOverload, InactivePolicyIsThePlainLindleyRecursion)
{
    // Two back-to-back jobs: the second waits for the first.
    const ReplayOutput out =
        replay({job(0, 0, 0, 100), job(0, 1, 10, 100)},
               OverloadPolicy{});
    EXPECT_FALSE(out.totals.enabled);
    EXPECT_EQ(out.totals.offered, 2u);
    EXPECT_EQ(out.totals.completed, 2u);
    EXPECT_EQ(out.totals.failures, 0u);
    ASSERT_EQ(out.txns.size(), 2u);
    EXPECT_EQ(out.txns[0].open, 100u);   // start 0, depart 100.
    EXPECT_EQ(out.txns[1].open, 190u);   // start 100, depart 200.
}

TEST(ReplayOverload, DeadlineShedBoundaryIsStrict)
{
    // Job 1 arrives at 10 and would start at 100 (job 0's depart)
    // and complete at 200.  With deadline 190 the predicted
    // completion equals arrival + deadline exactly -- NOT shed
    // (strict >); with 189 it is shed.
    OverloadPolicy pol;
    pol.admission = AdmissionKind::Deadline;
    pol.queueDepth = 64;
    pol.deadline = 190;
    const std::vector<OverloadJob> jobs{job(0, 0, 0, 100),
                                        job(0, 1, 10, 100)};

    const ReplayOutput onTime = replay(jobs, pol);
    EXPECT_EQ(onTime.totals.shedDeadline, 0u);
    EXPECT_EQ(onTime.totals.completed, 2u);
    EXPECT_EQ(onTime.totals.goodput, 2u);
    ASSERT_EQ(onTime.txns.size(), 2u);
    EXPECT_EQ(onTime.txns[1].open, 190u);

    pol.deadline = 189;
    const ReplayOutput late = replay(jobs, pol);
    EXPECT_EQ(late.totals.shedDeadline, 1u);
    EXPECT_EQ(late.totals.completed, 1u);
    EXPECT_EQ(late.totals.failures, 1u);
    // Completion-predictive admission never produces timeouts:
    // everything it admits meets its deadline.
    EXPECT_EQ(late.totals.timeouts, 0u);
    EXPECT_EQ(late.totals.goodput, late.totals.completed);
}

TEST(ReplayOverload, DropTailShedsWhenTheQueueIsFull)
{
    // Depth 1: one job in service, one waiter; the third arrival
    // finds the waiting room full.
    OverloadPolicy pol;
    pol.admission = AdmissionKind::DropTail;
    pol.queueDepth = 1;
    const ReplayOutput out =
        replay({job(0, 0, 0, 1000), job(0, 1, 10, 1000),
                job(0, 2, 20, 1000)},
               pol);
    EXPECT_EQ(out.totals.effectiveDepth, 1u);
    EXPECT_EQ(out.totals.shedQueue, 1u);
    EXPECT_EQ(out.totals.completed, 2u);
    EXPECT_EQ(out.totals.failures, 1u);
}

TEST(ReplayOverload, TokenBucketRefillEdge)
{
    // 1 token per 1024 cycles, burst 1.  The bucket starts full
    // (first job admitted, bucket empty), has accumulated exactly
    // 1023 token-units at cycle 1023 (shed), and tops back up by
    // cycle 1025 (admitted; the cap kicks in).
    OverloadPolicy pol;
    pol.admission = AdmissionKind::TokenBucket;
    pol.queueDepth = 64;
    pol.tokenRatePerKCycle = 1;
    pol.tokenBurst = 1;
    const ReplayOutput out =
        replay({job(0, 0, 0, 1), job(0, 1, 1023, 1),
                job(0, 2, 1025, 1)},
               pol);
    EXPECT_EQ(out.totals.shedToken, 1u);
    EXPECT_EQ(out.totals.completed, 2u);
    ASSERT_EQ(out.txns.size(), 3u);
    EXPECT_TRUE(out.txns[0].completed);
    EXPECT_FALSE(out.txns[1].completed);
    EXPECT_TRUE(out.txns[2].completed);
}

TEST(ReplayOverload, RetryBudgetExhaustionIsAPermanentFailure)
{
    // Stream 0's 10000-cycle job can never fit its 100-cycle
    // deadline: every attempt predicts a miss, so two budgeted
    // retries (backoff 256 then 512, both plus jitter) are spent
    // and the third shed is a permanent failure.  Stream 1's short
    // job slips in and completes.
    OverloadPolicy pol;
    pol.admission = AdmissionKind::Deadline;
    pol.queueDepth = 64;
    pol.deadline = 100;
    pol.retryBudget = 2;
    pol.retryBackoffBase = 256;
    pol.retryBackoffCap = 8192;
    const ReplayOutput out =
        replay({job(0, 0, 0, 10000), job(1, 0, 1, 50)}, pol, 2);
    EXPECT_EQ(out.totals.offered, 2u);
    EXPECT_EQ(out.totals.retries, 2u);
    EXPECT_EQ(out.totals.retryExhausted, 1u);
    EXPECT_EQ(out.totals.failures, 1u);
    EXPECT_EQ(out.totals.completed, 1u);
    EXPECT_EQ(out.streams[0].retries, 2u);
    EXPECT_EQ(out.streams[0].failures, 1u);
    EXPECT_EQ(out.streams[1].retries, 0u);
    EXPECT_EQ(out.streams[1].failures, 0u);
    // The short job finished first (outcomes land in resolution
    // order); the failed transaction consumed 1 + retryBudget
    // attempts.
    ASSERT_EQ(out.txns.size(), 2u);
    EXPECT_TRUE(out.txns[0].completed);
    EXPECT_FALSE(out.txns[1].completed);
    EXPECT_EQ(out.txns[1].attempts, 3u);
}

TEST(ReplayOverload, DegradationLadderWalksUpAndRecovers)
{
    // shedWindow 2, escalate at 1000 permille, recover only at 0.
    // j0/j1 admit (j1 queues behind j0 until cycle 10000); j2..j4
    // find the queue full -> two consecutive all-shed windows walk
    // the ladder to read-mostly then reject-all; j5/j6 are ladder
    // rejections; j7 (pressure long clear) is still rejected by the
    // ladder; j8's clean window recovers one rung but j8 is an
    // Update, shed at read-mostly; j9 (Read) is admitted; j10's
    // clean window recovers to normal.
    OverloadPolicy pol;
    pol.admission = AdmissionKind::DropTail;
    pol.queueDepth = 1;
    pol.degrade = true;
    pol.shedWindow = 2;
    pol.degradePermille = 1000;
    pol.recoverPermille = 0;
    const ReplayOutput out = replay(
        {job(0, 0, 0, 10000), job(0, 1, 10, 10000),
         job(0, 2, 20, 10), job(0, 3, 30, 10), job(0, 4, 40, 10),
         job(0, 5, 50, 10), job(0, 6, 60, 10),
         job(0, 7, 25000, 10),
         job(0, 8, 25010, 10, TxnKind::Update),
         job(0, 9, 25020, 10), job(0, 10, 25040, 10)},
        pol);
    EXPECT_EQ(out.totals.degradeUp, 2u);
    EXPECT_EQ(out.totals.degradeDown, 2u);
    EXPECT_EQ(out.totals.maxDegradeLevel,
              static_cast<unsigned>(traffic::DegradeLevel::RejectAll));
    EXPECT_EQ(out.totals.shedQueue, 3u);    // j2, j3, j4.
    EXPECT_EQ(out.totals.shedDegrade, 4u);  // j5, j6, j7, j8.
    EXPECT_EQ(out.totals.completed, 4u);    // j0, j1, j9, j10.
    EXPECT_EQ(out.totals.failures, 7u);
    EXPECT_EQ(out.totals.offered,
              out.totals.completed + out.totals.failures);
}

// ---------------------------------------------------------------- //
// End to end: Session and the experiment layer
// ---------------------------------------------------------------- //

TrafficPlan
policyPlan(double meanGap = 120.0)
{
    TrafficPlan plan;
    plan.streams = 4;
    plan.txnsPerStream = 16;
    plan.opsPerTxn = 2;
    plan.mix.keys = 32;
    plan.arrival.meanGap = meanGap;
    plan.policy.admission = AdmissionKind::Deadline;
    plan.policy.deadline = 2500;
    plan.policy.retryBudget = 4;
    plan.policy.degrade = true;
    plan.policy.shedWindow = 8;
    return plan;
}

TEST(OverloadSession, OfferedEqualsCompletedPlusFailures)
{
    Session s(SimConfig::paper(Config::WB).withCoreCount(2));
    const SimResult r = s.run(RunRequest::ofTraffic(policyPlan()));
    ASSERT_TRUE(r.ok());
    const OverloadResult &ov = r.stats.traffic.overload;
    ASSERT_TRUE(ov.enabled);
    EXPECT_EQ(ov.offered, 4u * 16u);
    EXPECT_EQ(ov.offered, ov.completed + ov.failures);
    EXPECT_EQ(ov.completed, ov.goodput + ov.timeouts);
    // At a 120-cycle mean gap the servers are overrun: the policy
    // must actually have shed or timed out something.
    EXPECT_GT(ov.shedDeadline + ov.timeouts, 0u);
    // Per-stream counters roll up to the totals.
    std::uint64_t shed = 0, retries = 0, failures = 0;
    for (const traffic::StreamLatency &sl : r.stats.traffic.streams) {
        shed += sl.shed;
        retries += sl.retries;
        failures += sl.failures;
    }
    EXPECT_EQ(retries, ov.retries);
    EXPECT_EQ(failures, ov.failures);
    EXPECT_EQ(shed, ov.shedQueue + ov.shedDeadline + ov.shedToken +
                        ov.shedDegrade);
}

TEST(OverloadSession, ClosedPoolHonorsTheInvariantToo)
{
    TrafficPlan plan = policyPlan();
    plan.arrival.kind = ArrivalKind::ClosedPool;
    plan.arrival.poolSize = 2;
    plan.arrival.thinkTime = 100.0;
    Session s(SimConfig::paper(Config::WB).withCoreCount(2));
    const SimResult r = s.run(RunRequest::ofTraffic(plan));
    ASSERT_TRUE(r.ok());
    const OverloadResult &ov = r.stats.traffic.overload;
    ASSERT_TRUE(ov.enabled);
    // A closed pool releases every transaction exactly once even
    // when its predecessor failed.
    EXPECT_EQ(ov.offered, 4u * 16u);
    EXPECT_EQ(ov.offered, ov.completed + ov.failures);
}

TEST(OverloadSession, WarmupWindowsAndSteadySplitPartitionTheRun)
{
    TrafficPlan plan = policyPlan(2000.0);
    plan.warmupPermille = 250;  // 4 of 16 txns per stream.
    plan.latencyWindows = 4;
    Session s(SimConfig::paper(Config::WB).withCoreCount(2));
    const SimResult r = s.run(RunRequest::ofTraffic(plan));
    ASSERT_TRUE(r.ok());
    const traffic::TrafficResult &t = r.stats.traffic;
    EXPECT_EQ(t.openWarmup.count, 4u * 4u);
    EXPECT_EQ(t.openWarmup.count + t.openSteady.count, t.open.count);
    EXPECT_EQ(t.serviceWarmup.count + t.serviceSteady.count,
              t.service.count);
    ASSERT_EQ(t.windows.size(), 4u);
    std::uint64_t inWindows = 0;
    for (const traffic::WindowLatency &w : t.windows)
        inWindows += w.open.count;
    EXPECT_EQ(inWindows, t.open.count);
    // 250 permille of 4 windows: exactly the first window is wholly
    // inside the warmup fraction.
    EXPECT_TRUE(t.windows[0].warmup);
    EXPECT_FALSE(t.windows[1].warmup);
}

exp::ExperimentPoint
policyPoint(std::string label, TrafficPlan plan)
{
    exp::ExperimentPoint pt;
    pt.label = std::move(label);
    pt.config = Config::WB;
    pt.simParams =
        SimConfig::paper(Config::WB).withCoreCount(2).params();
    pt.traffic = true;
    pt.trafficPlan = std::move(plan);
    return pt;
}

TEST(OverloadExp, PolicyCellsAreByteIdenticalAcrossJobsCounts)
{
    exp::ExperimentPlan plan;
    plan.add(policyPoint("WB/pol120", policyPlan(120.0)));
    plan.add(policyPoint("WB/pol2000", policyPlan(2000.0)));
    TrafficPlan closed = policyPlan(120.0);
    closed.arrival.kind = ArrivalKind::ClosedPool;
    plan.add(policyPoint("WB/closed", closed));

    exp::RunnerOptions serial;
    serial.jobs = 1;
    serial.printSummary = false;
    exp::RunnerOptions parallel = serial;
    parallel.jobs = 8;

    const exp::ExperimentResults a = exp::runPlan(plan, serial);
    const exp::ExperimentResults b = exp::runPlan(plan, parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(exp::serializeCell(a.cells()[i]),
                  exp::serializeCell(b.cells()[i]));
    }
    EXPECT_TRUE(a.cells()[0].result.traffic.overload.enabled);
}

TEST(OverloadExp, PolicyCellsAreTickerInvariant)
{
    const auto runWith = [](TickingMode mode) {
        SimConfig cfg = SimConfig::paper(Config::WB);
        CoreParams core = cfg.params().core;
        core.ticking = mode;
        Session s(cfg.withCore(core).withCoreCount(2));
        const SimResult r =
            s.run(RunRequest::ofTraffic(policyPlan(120.0)));
        EXPECT_TRUE(r.ok());
        return r.stats.traffic.overload;
    };
    const OverloadResult skip = runWith(TickingMode::SkipAhead);
    const OverloadResult ref = runWith(TickingMode::Reference);
    EXPECT_EQ(skip.goodput, ref.goodput);
    EXPECT_EQ(skip.timeouts, ref.timeouts);
    EXPECT_EQ(skip.retries, ref.retries);
    EXPECT_EQ(skip.shedDeadline, ref.shedDeadline);
    EXPECT_EQ(skip.open.p99, ref.open.p99);
    EXPECT_EQ(skip.goodputOpen.p99, ref.goodputOpen.p99);
}

TEST(OverloadExp, SnapshotRoundTripsTheOverloadSection)
{
    exp::ExperimentPlan plan;
    plan.add(policyPoint("WB/pol", policyPlan(120.0)));
    exp::RunnerOptions opt;
    opt.jobs = 1;
    opt.printSummary = false;
    const exp::ExperimentResults results = exp::runPlan(plan, opt);
    const exp::ExperimentCell &cell = results.cells().front();
    ASSERT_TRUE(cell.result.traffic.overload.enabled);

    const auto back = exp::deserializeCell(
        exp::serializeCell(cell), cell.point, cell.fingerprint);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(exp::serializeCell(*back), exp::serializeCell(cell));
    const OverloadResult &x = cell.result.traffic.overload;
    const OverloadResult &y = back->result.traffic.overload;
    EXPECT_EQ(x.goodput, y.goodput);
    EXPECT_EQ(x.shedDeadline, y.shedDeadline);
    EXPECT_EQ(x.retries, y.retries);
    EXPECT_EQ(x.steadyHorizon, y.steadyHorizon);
    EXPECT_EQ(x.maxDegradeLevel, y.maxDegradeLevel);
    ASSERT_EQ(back->result.traffic.windows.size(),
              cell.result.traffic.windows.size());
}

TEST(OverloadExp, EmptyPopulationsEmitNullPercentiles)
{
    // 2 txns per stream spread over 8 windows leaves most windows
    // empty: their summaries must surface as explicit nulls, never
    // fake zeros.
    TrafficPlan plan;
    plan.streams = 2;
    plan.txnsPerStream = 2;
    plan.opsPerTxn = 2;
    plan.mix.keys = 32;
    plan.latencyWindows = 8;
    exp::ExperimentPlan eplan;
    eplan.add(policyPoint("WB/sparse", plan));
    exp::RunnerOptions opt;
    opt.jobs = 1;
    opt.printSummary = false;
    const exp::ExperimentResults results = exp::runPlan(eplan, opt);
    const std::string json = exp::resultsToJson("t", results);
    EXPECT_NE(json.find("\"count\": 0, \"p50\": null"),
              std::string::npos);
    // Populated summaries still carry numbers.
    EXPECT_NE(json.find("\"count\": 2, \"p50\": "),
              std::string::npos);
}

} // namespace
} // namespace ede
