/**
 * @file
 * Behavioural tests for the out-of-order core: scheduling, memory
 * ordering, fences, branch squashes and the write buffer.
 */

#include <gtest/gtest.h>

#include "sim_test_util.hh"

namespace ede {
namespace {

TEST(Pipeline, EmptyTraceFinishesInstantly)
{
    MiniSim sim;
    Trace t;
    EXPECT_LE(sim.run(t), 2u);
    EXPECT_EQ(sim.core->stats().retired, 0u);
}

TEST(Pipeline, RetiresEveryInstructionExactlyOnce)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 50; ++i)
        b.alu(static_cast<RegIndex>(1 + (i % 8)), kZeroReg);
    sim.run(t);
    EXPECT_EQ(sim.core->stats().retired, t.size());
    EXPECT_EQ(sim.core->stats().cycles, sim.core->stats().issueHist
              .totalSamples());
}

TEST(Pipeline, DependentChainSlowerThanIndependentOps)
{
    Trace dep;
    {
        TraceBuilder b(dep);
        b.movImm(1, 0);
        for (int i = 0; i < 40; ++i)
            b.alu(1, 1); // Serial chain through x1.
    }
    Trace indep;
    {
        TraceBuilder b(indep);
        b.movImm(1, 0);
        for (int i = 0; i < 40; ++i)
            b.alu(static_cast<RegIndex>(2 + (i % 8)), kZeroReg);
    }
    MiniSim s1;
    MiniSim s2;
    const Cycle dep_cycles = s1.run(dep);
    const Cycle indep_cycles = s2.run(indep);
    EXPECT_GT(dep_cycles, indep_cycles);
    // The serial chain executes one ALU per cycle at best.
    EXPECT_GE(dep_cycles, 40u);
}

TEST(Pipeline, MultiplyLatencyVisibleInChain)
{
    Trace muls;
    {
        TraceBuilder b(muls);
        b.movImm(1, 1);
        for (int i = 0; i < 20; ++i)
            b.mul(1, 1, 1);
    }
    Trace alus;
    {
        TraceBuilder b(alus);
        b.movImm(1, 1);
        for (int i = 0; i < 20; ++i)
            b.alu(1, 1);
    }
    MiniSim s1;
    MiniSim s2;
    EXPECT_GT(s1.run(muls), s2.run(alus));
}

TEST(Pipeline, LoadMissPaysMemoryLatency)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    b.ldr(1, 2, MiniSim::dramLine(0));
    const Cycle cycles = sim.run(t);
    EXPECT_GT(cycles, 30u); // L1+L2+L3+DRAM path.
    EXPECT_EQ(sim.core->stats().retired, 1u);
}

TEST(Pipeline, DependentLoadsChainThroughRegisters)
{
    // ldr x1,[x2]; ldr x3,[x1]: the second must wait for the first.
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    const std::size_t l1 = b.ldr(1, 2, MiniSim::dramLine(0));
    const std::size_t l2 = b.ldr(3, 1, MiniSim::dramLine(50));
    sim.run(t);
    EXPECT_GT(sim.done(l2), sim.done(l1));
}

TEST(Pipeline, IndependentLoadsOverlap)
{
    Trace two;
    {
        TraceBuilder b(two);
        b.ldr(1, 2, MiniSim::dramLine(0));
        b.ldr(3, 4, MiniSim::dramLine(40));
    }
    Trace chain;
    {
        TraceBuilder b(chain);
        b.ldr(1, 2, MiniSim::dramLine(0));
        b.ldr(3, 1, MiniSim::dramLine(40));
    }
    MiniSim s1;
    MiniSim s2;
    const Cycle overlapped = s1.run(two);
    const Cycle serial = s2.run(chain);
    EXPECT_LT(overlapped, serial);
}

TEST(Pipeline, StoreValueReachesTimingImage)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    b.str(1, 2, MiniSim::dramLine(1), 0xabcdu);
    sim.run(t);
    EXPECT_EQ(sim.image.read<std::uint64_t>(MiniSim::dramLine(1)),
              0xabcdu);
}

TEST(Pipeline, StpWritesBothHalves)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    const Addr a = MiniSim::dramLine(2); // 16-byte aligned.
    b.stp(1, 2, 3, a, 111, 222);
    sim.run(t);
    EXPECT_EQ(sim.image.read<std::uint64_t>(a), 111u);
    EXPECT_EQ(sim.image.read<std::uint64_t>(a + 8), 222u);
}

TEST(Pipeline, StoreToLoadForwarding)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    const Addr a = MiniSim::dramLine(3);
    b.str(1, 2, a, 77);
    const std::size_t ld = b.ldr(3, 4, a);
    const Cycle cycles = sim.run(t);
    EXPECT_GE(sim.core->stats().loadsForwarded, 1u);
    // The load must not wait for the store to drain to the cache.
    EXPECT_LT(sim.done(ld), cycles);
}

TEST(Pipeline, PartialOverlapWaitsForStoreCompletion)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    const Addr a = MiniSim::dramLine(4);
    const std::size_t st = b.stp(1, 2, 3, a, 1, 2); // 16 bytes.
    // 8-byte load inside the pair: covered, forwards.
    const std::size_t ld_cov = b.ldr(4, 5, a + 8);
    sim.run(t);
    EXPECT_GE(sim.done(ld_cov), 0u);
    EXPECT_GE(sim.core->stats().loadsForwarded, 1u);
    (void)st;
}

TEST(Pipeline, OverlappingStoresDrainInOrder)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    const Addr a = MiniSim::dramLine(5);
    const std::size_t s1 = b.str(1, 2, a, 1);
    const std::size_t s2 = b.str(3, 4, a, 2); // Same address.
    sim.run(t);
    EXPECT_GE(sim.done(s2), sim.done(s1));
    // Drain order decides the final value.
    EXPECT_EQ(sim.image.read<std::uint64_t>(a), 2u);
}

TEST(Pipeline, StoreAfterCleanNeedsNoOrdering)
{
    // A store following a DC CVAP of the same line must not wait for
    // the (slow) persist acknowledgement.
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    const Addr a = sim.nvmLine(30);
    b.str(1, 2, a, 1);
    b.dsbSy(); // Warm the line, quiesce.
    const std::size_t cv = b.cvap(2, a);
    const std::size_t st = b.str(3, 4, a + 8, 2);
    sim.run(t);
    EXPECT_LT(sim.done(st), sim.done(cv));
}

TEST(Pipeline, CvapOrderedAfterSameLineStore)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    const Addr a = sim.nvmLine(0);
    const std::size_t st = b.str(1, 2, a, 9);
    const std::size_t cv = b.cvap(2, a);
    sim.run(t);
    EXPECT_GT(sim.done(cv), sim.done(st));
    EXPECT_EQ(sim.mem->controller().nvm().stats().cleansAccepted, 1u);
}

TEST(Pipeline, DsbWaitsForOlderPersistAndBlocksYounger)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    const Addr a = sim.nvmLine(1);
    b.str(1, 2, a, 5);
    const std::size_t cv = b.cvap(2, a);
    const std::size_t fence = b.dsbSy();
    const std::size_t young = b.alu(3, kZeroReg);
    sim.run(t);
    // The DSB completes in the same cycle the last older persist
    // does, never earlier.
    EXPECT_GE(sim.done(fence), sim.done(cv));
    EXPECT_GT(sim.done(young), sim.done(cv));
}

TEST(Pipeline, DsbSerializesIndependentPersistPairs)
{
    // Two independent {store, cvap} pairs: a DSB between them forces
    // serialization (Figure 3); without it they overlap.
    auto build = [](MiniSim &sim, bool fence) {
        Trace t;
        TraceBuilder b(t);
        for (int i = 0; i < 8; ++i) {
            const Addr a = sim.nvmLine(10 + i);
            b.str(1, 2, a, i);
            b.cvap(2, a);
            if (fence)
                b.dsbSy();
        }
        return t;
    };
    MiniSim fenced;
    MiniSim free_run;
    const Trace tf = build(fenced, true);
    const Trace tu = build(free_run, false);
    const Cycle with_fence = fenced.run(tf);
    const Cycle without = free_run.run(tu);
    EXPECT_GT(with_fence, without + 100);
}

TEST(Pipeline, DmbStOrdersStoreVisibility)
{
    // First store misses to a cold NVM line (slow fill); the second
    // hits a warmed DRAM line (fast).  Without DMB ST the second
    // becomes visible first; with it, visibility is ordered.
    auto build = [](MiniSim &sim, bool dmb, std::size_t &i1,
                    std::size_t &i2) {
        Trace t;
        TraceBuilder b(t);
        b.str(1, 2, MiniSim::dramLine(6), 1); // Warm the line.
        b.dsbSy();                            // Quiesce.
        i1 = b.str(1, 2, sim.nvmLine(2), 2);
        if (dmb)
            b.dmbSt();
        i2 = b.str(3, 4, MiniSim::dramLine(6), 3);
        return t;
    };
    std::size_t a1;
    std::size_t a2;
    MiniSim plain;
    const Trace tp = build(plain, false, a1, a2);
    plain.run(tp);
    EXPECT_LT(plain.done(a2), plain.done(a1))
        << "unfenced stores should complete out of order here";

    std::size_t b1;
    std::size_t b2;
    MiniSim fenced;
    const Trace tf = build(fenced, true, b1, b2);
    fenced.run(tf);
    EXPECT_GE(fenced.done(b2), fenced.done(b1));
}

TEST(Pipeline, DmbStCvapCoverageIsConfigurable)
{
    // Architecturally DMB ST does not order DC CVAP (the Section II-A
    // hazard that makes SU unsafe); conservative hardware (gem5's
    // LSQ, our default) stalls it anyway.  Both behaviours are
    // modelled.
    auto build = [](MiniSim &sim, std::size_t &cv, std::size_t &young) {
        Trace t;
        TraceBuilder b(t);
        b.str(1, 2, MiniSim::dramLine(7), 9); // Warm the young line.
        b.dsbSy();
        const Addr slow = sim.nvmLine(3);
        b.str(1, 2, slow, 1);
        cv = b.cvap(2, slow);
        b.dmbSt();
        young = b.str(3, 4, MiniSim::dramLine(7), 2);
        return t;
    };
    {
        CoreParams conservative;
        conservative.dmbStCoversCvap = true;
        MiniSim sim(EnforceMode::None, conservative);
        std::size_t cv;
        std::size_t young;
        const Trace t = build(sim, cv, young);
        sim.run(t);
        EXPECT_GE(sim.done(young), sim.done(cv));
    }
    {
        CoreParams aggressive;
        aggressive.dmbStCoversCvap = false;
        MiniSim sim(EnforceMode::None, aggressive);
        std::size_t cv;
        std::size_t young;
        const Trace t = build(sim, cv, young);
        sim.run(t);
        EXPECT_LT(sim.done(young), sim.done(cv));
    }
}

TEST(Pipeline, MispredictedBranchSquashesAndRecovers)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    b.movImm(1, 1);
    b.movImm(2, 2);
    // The bimodal table initializes to weakly-taken, so a not-taken
    // branch mispredicts on first sight.
    b.branchCond("brq", 1, 2, false);
    const Addr a = MiniSim::dramLine(8);
    b.str(3, 4, a, 42);
    b.alu(5, kZeroReg);
    sim.run(t);
    EXPECT_GE(sim.core->stats().mispredicts, 1u);
    EXPECT_GE(sim.core->stats().squashes, 1u);
    EXPECT_EQ(sim.core->stats().retired, t.size());
    EXPECT_EQ(sim.image.read<std::uint64_t>(a), 42u);
}

TEST(Pipeline, PredictorLearnsRepeatedDirection)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 20; ++i)
        b.branchCond("loop", 1, 2, false);
    sim.run(t);
    // First one or two mispredict; the rest are learned.  Dispatch
    // counts include squash replays, so it can exceed 20.
    EXPECT_LE(sim.core->stats().mispredicts, 5u);
    EXPECT_GE(sim.core->stats().branches, 20u);
    EXPECT_LE(sim.core->stats().branches, 30u);
}

TEST(Pipeline, SquashedLoadResponseIsDropped)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    b.branchCond("sq", 1, 2, false); // Mispredicts.
    b.ldr(1, 2, MiniSim::dramLine(9)); // Issued on the wrong path.
    for (int i = 0; i < 10; ++i)
        b.alu(3, kZeroReg);
    sim.run(t);
    EXPECT_EQ(sim.core->stats().retired, t.size());
}

TEST(Pipeline, WriteBufferBackpressureStallsRetire)
{
    CoreParams small;
    small.wbSize = 2;
    MiniSim sim(EnforceMode::None, small);
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 12; ++i)
        b.str(1, 2, sim.nvmLine(20 + i), i); // All cold NVM lines.
    sim.run(t);
    EXPECT_GT(sim.core->stats().retireStallWbFull, 0u);
    EXPECT_EQ(sim.core->stats().retired, t.size());
}

TEST(Pipeline, IssueHistogramAccountsEveryCycle)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 30; ++i)
        b.alu(static_cast<RegIndex>(1 + (i % 6)), kZeroReg);
    const Cycle cycles = sim.run(t);
    const Histogram &h = sim.core->stats().issueHist;
    EXPECT_EQ(h.totalSamples(), cycles);
    std::uint64_t issued = 0;
    for (std::size_t w = 1; w < h.size(); ++w)
        issued += h.count(w) * w;
    EXPECT_EQ(issued, sim.core->stats().issuedOps);
}

TEST(Pipeline, NopsAndFencesRetireInOrder)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    b.nop();
    b.dmbSt();
    b.nop();
    b.dsbSy();
    b.nop();
    sim.run(t);
    EXPECT_EQ(sim.core->stats().retired, 5u);
}

} // namespace
} // namespace ede
