/**
 * @file
 * Property sweeps over core parameters: for any sensible structure
 * sizing the pipeline must terminate, retire every instruction
 * exactly once, keep EDE orderings, and behave monotonically where
 * the architecture says it should.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sim_test_util.hh"

namespace ede {
namespace {

/** A mixed workload with EDE pairs, branches, loads and fences. */
struct BuiltTrace
{
    Trace trace;
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
};

BuiltTrace
mixedTrace(MiniSim &sim, std::uint64_t seed, int ops)
{
    BuiltTrace out;
    TraceBuilder b(out.trace);
    Rng rng(seed);
    for (int i = 0; i < 8; ++i)
        b.str(1, 2, MiniSim::dramLine(i), 0);
    b.dsbSy();
    for (int i = 0; i < ops; ++i) {
        const Edk key = static_cast<Edk>(1 + rng.below(15));
        const std::size_t p = b.cvap(
            2, sim.nvmLine(static_cast<int>(rng.below(32))), {key, 0});
        for (int f = 0; f < static_cast<int>(rng.below(4)); ++f)
            b.alu(static_cast<RegIndex>(5 + (f % 4)), kZeroReg);
        if (rng.chance(0.25)) {
            b.branchCond("p" + std::to_string(rng.below(3)), 1, 2,
                         rng.chance(0.5));
        }
        if (rng.chance(0.3))
            b.ldr(6, 7, MiniSim::dramLine(static_cast<int>(
                            rng.below(8))));
        const std::size_t c = b.str(
            3, 4, MiniSim::dramLine(static_cast<int>(rng.below(8))),
            i + 1, 0, {0, key});
        out.pairs.emplace_back(p, c);
        if (rng.chance(0.1))
            b.dsbSy();
        if (rng.chance(0.1))
            b.waitKey(static_cast<Edk>(1 + rng.below(15)));
    }
    return out;
}

struct ParamPoint
{
    const char *name;
    CoreParams params;
};

std::vector<ParamPoint>
paramPoints()
{
    std::vector<ParamPoint> points;
    {
        CoreParams p;
        points.push_back({"table1", p});
    }
    {
        CoreParams p;
        p.robSize = 16;
        p.iqSize = 8;
        points.push_back({"narrow_window", p});
    }
    {
        CoreParams p;
        p.lqSize = 2;
        p.sqSize = 2;
        points.push_back({"tiny_lsq", p});
    }
    {
        CoreParams p;
        p.wbSize = 1;
        p.wbDrainPerCycle = 1;
        points.push_back({"single_wb", p});
    }
    {
        CoreParams p;
        p.fetchWidth = 1;
        p.retireWidth = 1;
        p.issueWidth = 1;
        points.push_back({"scalar", p});
    }
    {
        CoreParams p;
        p.robSize = 256;
        p.iqSize = 96;
        p.wbSize = 64;
        points.push_back({"huge", p});
    }
    {
        CoreParams p;
        p.mispredictPenalty = 30;
        points.push_back({"slow_redirect", p});
    }
    return points;
}

using SweepParam = std::tuple<int /*point*/, EnforceMode>;

class ParamSweepTest : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(ParamSweepTest, TerminatesRetiresAndKeepsOrdering)
{
    const auto [point_idx, mode] = GetParam();
    const ParamPoint point = paramPoints()[point_idx];
    for (std::uint64_t seed : {11ull, 23ull}) {
        MiniSim sim(mode, point.params);
        const BuiltTrace bt = mixedTrace(sim, seed, 40);
        sim.run(bt.trace);
        EXPECT_EQ(sim.core->stats().retired, bt.trace.size())
            << point.name << " seed " << seed;
        for (const auto &[p, c] : bt.pairs) {
            EXPECT_GE(sim.done(c), sim.done(p))
                << point.name << " seed " << seed;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParamSweepTest,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(EnforceMode::None,
                                         EnforceMode::IQ,
                                         EnforceMode::WB)),
    [](const auto &info) {
        return std::string(paramPoints()[std::get<0>(info.param)]
                               .name) +
               "_" +
               std::string(enforceModeName(std::get<1>(info.param)));
    });

TEST(ParamMonotonicity, BiggerWriteBufferNeverHurts)
{
    for (EnforceMode mode : {EnforceMode::None, EnforceMode::WB}) {
        Cycle prev = ~Cycle{0};
        for (int wb : {2, 8, 32}) {
            CoreParams p;
            p.wbSize = wb;
            MiniSim sim(mode, p);
            const BuiltTrace bt = mixedTrace(sim, 5, 60);
            const Cycle cycles = sim.run(bt.trace);
            EXPECT_LE(cycles, prev + prev / 10)
                << "wb=" << wb; // Allow small scheduling noise.
            prev = cycles;
        }
    }
}

TEST(ParamMonotonicity, WiderMachineNeverHurtsMuch)
{
    Cycle narrow_cycles = 0;
    Cycle wide_cycles = 0;
    {
        CoreParams p;
        p.fetchWidth = 1;
        p.issueWidth = 1;
        p.retireWidth = 1;
        MiniSim sim(EnforceMode::WB, p);
        const BuiltTrace bt = mixedTrace(sim, 9, 60);
        narrow_cycles = sim.run(bt.trace);
    }
    {
        MiniSim sim(EnforceMode::WB);
        const BuiltTrace bt = mixedTrace(sim, 9, 60);
        wide_cycles = sim.run(bt.trace);
    }
    EXPECT_LE(wide_cycles, narrow_cycles);
}

TEST(ParamMonotonicity, MispredictPenaltyCostsCycles)
{
    auto run_with_penalty = [](Cycle penalty) {
        CoreParams p;
        p.mispredictPenalty = penalty;
        MiniSim sim(EnforceMode::None, p);
        Trace t;
        TraceBuilder b(t);
        for (int i = 0; i < 30; ++i) {
            // Alternating outcome defeats the bimodal predictor.
            b.branchCond("alt", 1, 2, i % 2 == 0);
            b.alu(3, 3, kNoReg, 1);
        }
        return sim.run(t);
    };
    EXPECT_LT(run_with_penalty(2), run_with_penalty(40));
}

} // namespace
} // namespace ede
