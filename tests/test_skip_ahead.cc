/**
 * @file
 * Differential validation of the skip-ahead scheduler.
 *
 * The skip-ahead loop in OoOCore::run jumps dead windows using
 * component next-event hints; the reference loop ticks every cycle.
 * The contract is bit-identical *simulated* results: the same cycle
 * counts, the same CoreStats (including replayed dead-tick stall
 * counters), the same write-buffer/NVM statistics, and the same
 * persist order -- for every Table III configuration.  Only the host
 * profile (wall time, tick counts, skip counters) may differ.
 *
 * These tests pin the ticking mode through SimConfig/CoreParams
 * rather than the EDE_REFERENCE_TICKING environment variable, which
 * is resolved once per process and so cannot drive a differential
 * test.
 */

#include <gtest/gtest.h>

#include "apps/harness.hh"
#include "sim_test_util.hh"

namespace ede {
namespace {

/** Everything a differential comparison looks at. */
struct RunSnapshot
{
    RunResult result;
    Cycle opCycles = 0;
    std::vector<PersistEvent> persists;
    std::vector<MediaWriteEvent> mediaWrites;
    HostProfile profile;
};

RunSnapshot
runWorkload(AppId app, Config cfg, TickingMode mode)
{
    const RunSpec spec{6, 6, 42};
    SimParams params = makeParams(cfg);
    params.core.ticking = mode;
    WorkloadHarness h(app, cfg, spec, AppParams{}, params);
    h.generate();
    h.simulate();
    RunSnapshot snap;
    snap.result = h.system().result();
    snap.opCycles = h.opPhaseCycles();
    snap.persists = h.system().persistEvents();
    snap.mediaWrites = h.system().mediaWriteEvents();
    snap.profile = h.system().profile();
    return snap;
}

void
expectSameCoreStats(const CoreStats &a, const CoreStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.dispatched, b.dispatched);
    EXPECT_EQ(a.issuedOps, b.issuedOps);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.squashes, b.squashes);
    EXPECT_EQ(a.squashedInsts, b.squashedInsts);
    EXPECT_EQ(a.loadsForwarded, b.loadsForwarded);
    EXPECT_EQ(a.retireStallWbFull, b.retireStallWbFull);
    EXPECT_EQ(a.dispatchStallRob, b.dispatchStallRob);
    EXPECT_EQ(a.dispatchStallIq, b.dispatchStallIq);
    EXPECT_EQ(a.dispatchStallLsq, b.dispatchStallLsq);
    EXPECT_EQ(a.edkStallChecks, b.edkStallChecks);
    EXPECT_EQ(a.edkExternalStalls, b.edkExternalStalls);
    EXPECT_EQ(a.edkStuckDetected, b.edkStuckDetected);
    EXPECT_EQ(a.edkFencesSynthesized, b.edkFencesSynthesized);
    ASSERT_EQ(a.issueHist.size(), b.issueHist.size());
    for (std::size_t i = 0; i < a.issueHist.size(); ++i)
        EXPECT_EQ(a.issueHist.count(i), b.issueHist.count(i)) << i;
    EXPECT_EQ(a.issueHist.saturated(), b.issueHist.saturated());
}

void
expectSameSnapshot(const RunSnapshot &ref, const RunSnapshot &skip)
{
    EXPECT_EQ(ref.result.cycles, skip.result.cycles);
    EXPECT_EQ(ref.opCycles, skip.opCycles);
    expectSameCoreStats(ref.result.core, skip.result.core);

    EXPECT_EQ(ref.result.wb.inserted, skip.result.wb.inserted);
    EXPECT_EQ(ref.result.wb.pushes, skip.result.wb.pushes);
    EXPECT_EQ(ref.result.wb.srcIdGated, skip.result.wb.srcIdGated);
    EXPECT_EQ(ref.result.wb.lineGated, skip.result.wb.lineGated);
    EXPECT_EQ(ref.result.wb.dmbGated, skip.result.wb.dmbGated);
    EXPECT_EQ(ref.result.wb.memRejected, skip.result.wb.memRejected);

    EXPECT_EQ(ref.result.nvm.writesAccepted,
              skip.result.nvm.writesAccepted);
    EXPECT_EQ(ref.result.nvm.mediaWrites, skip.result.nvm.mediaWrites);
    EXPECT_EQ(ref.result.nvm.reads, skip.result.nvm.reads);
    EXPECT_EQ(ref.result.l1d.misses, skip.result.l1d.misses);
    EXPECT_EQ(ref.result.dram.reads, skip.result.dram.reads);

    // Persist order is the crash-consistency ground truth; the fault
    // campaign's crash-point classification follows from it and the
    // media-write schedule, so identity here covers the campaign.
    ASSERT_EQ(ref.persists.size(), skip.persists.size());
    for (std::size_t i = 0; i < ref.persists.size(); ++i) {
        EXPECT_EQ(ref.persists[i].addr, skip.persists[i].addr) << i;
        EXPECT_EQ(ref.persists[i].size, skip.persists[i].size) << i;
        EXPECT_EQ(ref.persists[i].cycle, skip.persists[i].cycle) << i;
    }
    ASSERT_EQ(ref.mediaWrites.size(), skip.mediaWrites.size());
    for (std::size_t i = 0; i < ref.mediaWrites.size(); ++i) {
        EXPECT_EQ(ref.mediaWrites[i].lineAddr,
                  skip.mediaWrites[i].lineAddr) << i;
        EXPECT_EQ(ref.mediaWrites[i].cycle,
                  skip.mediaWrites[i].cycle) << i;
    }
}

class SkipAheadDifferential
    : public ::testing::TestWithParam<Config>
{
};

TEST_P(SkipAheadDifferential, UpdateWorkloadIsBitIdentical)
{
    const RunSnapshot ref = runWorkload(AppId::Update, GetParam(),
                                        TickingMode::Reference);
    const RunSnapshot skip = runWorkload(AppId::Update, GetParam(),
                                         TickingMode::SkipAhead);
    expectSameSnapshot(ref, skip);
}

TEST_P(SkipAheadDifferential, SwapWorkloadIsBitIdentical)
{
    const RunSnapshot ref = runWorkload(AppId::Swap, GetParam(),
                                        TickingMode::Reference);
    const RunSnapshot skip = runWorkload(AppId::Swap, GetParam(),
                                         TickingMode::SkipAhead);
    expectSameSnapshot(ref, skip);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SkipAheadDifferential,
    ::testing::ValuesIn(kAllConfigs.begin(), kAllConfigs.end()),
    [](const ::testing::TestParamInfo<Config> &info) {
        return std::string(configName(info.param));
    });

TEST(SkipAhead, ProfileSeparatesTheModes)
{
    const RunSnapshot ref = runWorkload(AppId::Update, Config::B,
                                        TickingMode::Reference);
    const RunSnapshot skip = runWorkload(AppId::Update, Config::B,
                                         TickingMode::SkipAhead);

    EXPECT_TRUE(ref.profile.referenceTicking);
    EXPECT_EQ(ref.profile.skipJumps, 0u);
    EXPECT_EQ(ref.profile.cyclesSkipped, 0u);
    EXPECT_EQ(ref.profile.hostTicks, ref.result.cycles);

    EXPECT_FALSE(skip.profile.referenceTicking);
    EXPECT_GT(skip.profile.skipJumps, 0u);
    EXPECT_GT(skip.profile.cyclesSkipped, 0u);
    // Every simulated cycle is either ticked or skipped.
    EXPECT_EQ(skip.profile.hostTicks + skip.profile.cyclesSkipped,
              skip.profile.cyclesSimulated);
    EXPECT_EQ(skip.profile.cyclesSimulated, skip.result.cycles);
}

/** CoreParams with the ticking mode pinned. */
CoreParams
pinned(TickingMode mode)
{
    CoreParams p;
    p.ticking = mode;
    return p;
}

TEST(SkipAhead, WaitAllKeysWakesAtTheSameCycle)
{
    // Regression: WAIT_ALL_KEYS parks the frontend until every EDE
    // key resolves; a skip target that overshoots the last producer's
    // completion would wake the consumer late (or trip the watchdog).
    // Both producers persist to NVM, so the dead window between the
    // waits is exactly the kind skip-ahead jumps.
    std::array<std::vector<Cycle>, 2> done;
    std::array<Cycle, 2> cycles{};
    const std::array<TickingMode, 2> modes{TickingMode::Reference,
                                           TickingMode::SkipAhead};
    for (std::size_t m = 0; m < modes.size(); ++m) {
        MiniSim sim(EnforceMode::IQ, pinned(modes[m]));
        Trace t;
        TraceBuilder b(t);
        b.str(2, 3, MiniSim::dramLine(0), 7);
        b.cvap(2, sim.nvmLine(0), {1, 0});
        b.cvap(3, sim.nvmLine(1), {7, 0});
        b.waitAllKeys();
        b.str(4, 5, MiniSim::dramLine(0), 1);
        cycles[m] = sim.run(t);
        done[m] = sim.core->completionCycles();
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    ASSERT_EQ(done[0].size(), done[1].size());
    for (std::size_t i = 0; i < done[0].size(); ++i)
        EXPECT_EQ(done[0][i], done[1][i]) << "trace index " << i;
}

} // namespace
} // namespace ede
