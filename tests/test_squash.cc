/**
 * @file
 * Squash-recovery tests: branch mispredictions must restore the
 * register map, the speculative EDM (Section V-A1) and every
 * scheduling structure, across adversarial placements of EDE
 * instructions, fences and memory operations.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sim_test_util.hh"

namespace ede {
namespace {

/** A conditional branch the bimodal predictor gets wrong (taken
 *  table initializes weakly-taken, so not-taken mispredicts). */
std::size_t
mispredicting(TraceBuilder &b, const std::string &site)
{
    return b.branchCond(site, 1, 2, false);
}

TEST(Squash, RegisterMapRecovers)
{
    // x5 is written before the branch and again after it; the
    // post-squash re-dispatch must rebuild the dependence on the
    // surviving producer.
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    b.movImm(5, 7);
    mispredicting(b, "s1");
    b.alu(5, 5, kNoReg, 1);          // Depends on the mov.
    const std::size_t st = b.str(5, 6, MiniSim::dramLine(0), 8);
    sim.run(t);
    EXPECT_GE(sim.core->stats().squashes, 1u);
    EXPECT_EQ(sim.core->stats().retired, t.size());
    EXPECT_EQ(sim.image.read<std::uint64_t>(MiniSim::dramLine(0)), 8u);
    (void)st;
}

TEST(Squash, BackToBackMispredicts)
{
    MiniSim sim;
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 6; ++i) {
        mispredicting(b, "b" + std::to_string(i));
        b.alu(3, 3, kNoReg, 1);
    }
    sim.run(t);
    EXPECT_GE(sim.core->stats().squashes, 3u);
    EXPECT_EQ(sim.core->stats().retired, t.size());
}

class SquashEdeTest : public ::testing::TestWithParam<EnforceMode>
{
};

TEST_P(SquashEdeTest, ProducerBeforeBranchSurvives)
{
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    b.str(1, 2, MiniSim::dramLine(0), 0);
    b.dsbSy();
    const std::size_t pr = b.cvap(2, sim.nvmLine(0), {3, 0});
    mispredicting(b, "sq");
    const std::size_t co = b.str(3, 4, MiniSim::dramLine(0), 1, 0,
                                 {0, 3});
    sim.run(t);
    EXPECT_GE(sim.core->stats().squashes, 1u);
    EXPECT_GE(sim.done(co), sim.done(pr));
}

TEST_P(SquashEdeTest, SquashedProducerDoesNotLeakIntoEdm)
{
    // A producer *after* the branch is squashed and re-dispatched;
    // a consumer after it must link to the re-dispatched instance,
    // not the squashed one, and ordering must hold.
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    b.str(1, 2, MiniSim::dramLine(0), 0);
    b.dsbSy();
    mispredicting(b, "sq2");
    const std::size_t pr = b.cvap(2, sim.nvmLine(0), {2, 0});
    const std::size_t co = b.str(3, 4, MiniSim::dramLine(0), 1, 0,
                                 {0, 2});
    sim.run(t);
    EXPECT_GE(sim.core->stats().squashes, 1u);
    EXPECT_GE(sim.done(co), sim.done(pr));
    // Post-run: every EDM entry has been cleared by completion.
    EXPECT_TRUE(sim.core->edm().spec().empty());
    EXPECT_TRUE(sim.core->edm().nonspec().empty());
}

TEST_P(SquashEdeTest, JoinAcrossSquash)
{
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    b.str(1, 2, MiniSim::dramLine(0), 0);
    b.dsbSy();
    const std::size_t p1 = b.cvap(2, sim.nvmLine(0), {1, 0});
    mispredicting(b, "sqj");
    const std::size_t p2 = b.cvap(3, sim.nvmLine(1), {2, 0});
    b.join(3, 1, 2);
    const std::size_t co = b.str(4, 5, MiniSim::dramLine(0), 1, 0,
                                 {0, 3});
    sim.run(t);
    EXPECT_GE(sim.done(co), sim.done(p1));
    EXPECT_GE(sim.done(co), sim.done(p2));
}

TEST_P(SquashEdeTest, BackToBackSquashesWithLiveKey)
{
    // Two mispredicts in a row while key 1 has a live in-flight
    // producer, with a second producer defined on the wrong path of
    // each branch.  Both squashes must restore the speculative EDM
    // from non-speculative state plus surviving definitions; the
    // consumer after the second branch must still order after the
    // original producer, and no squashed definition may leak.
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    b.str(1, 2, MiniSim::dramLine(0), 0);
    b.dsbSy();
    const std::size_t p1 = b.cvap(2, sim.nvmLine(0), {1, 0});
    mispredicting(b, "nest1");
    const std::size_t p2 = b.cvap(3, sim.nvmLine(4), {2, 0});
    mispredicting(b, "nest2");
    const std::size_t c1 = b.str(4, 5, MiniSim::dramLine(1), 1, 0,
                                 {0, 1});
    const std::size_t c2 = b.str(6, 7, MiniSim::dramLine(2), 2, 0,
                                 {0, 2});
    b.waitAllKeys();
    sim.run(t);
    EXPECT_GE(sim.core->stats().squashes, 2u);
    EXPECT_EQ(sim.core->stats().retired, t.size());
    EXPECT_GE(sim.done(c1), sim.done(p1));
    EXPECT_GE(sim.done(c2), sim.done(p2));
    // Every link was cleared by completion; nothing squashed leaked
    // into either EDM copy.
    EXPECT_TRUE(sim.core->edm().spec().empty());
    EXPECT_TRUE(sim.core->edm().nonspec().empty());
}

TEST_P(SquashEdeTest, WaitCountersBalanceAfterSquash)
{
    // Wait counters track retired-but-incomplete instructions; a
    // squashed EDE load must leave them balanced or a later
    // WAIT_ALL_KEYS deadlocks.
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    b.str(1, 2, MiniSim::dramLine(0), 0);
    b.dsbSy();
    b.cvap(2, sim.nvmLine(0), {1, 0});
    mispredicting(b, "sqw");
    b.ldr(3, 4, MiniSim::dramLine(0), 0, {0, 1}); // Counted load.
    b.waitAllKeys();
    b.str(5, 6, MiniSim::dramLine(0), 2);
    const Cycle cycles = sim.run(t);
    EXPECT_GT(cycles, 0u);
    EXPECT_EQ(sim.core->stats().retired, t.size());
}

TEST_P(SquashEdeTest, DsbAcrossSquash)
{
    MiniSim sim(GetParam());
    Trace t;
    TraceBuilder b(t);
    b.cvap(2, sim.nvmLine(0));
    mispredicting(b, "sqd");
    const std::size_t fence = b.dsbSy();
    const std::size_t young = b.alu(3, kZeroReg);
    sim.run(t);
    EXPECT_EQ(sim.core->stats().retired, t.size());
    EXPECT_GE(sim.done(young), sim.done(fence));
}

TEST_P(SquashEdeTest, StressRandomBranchyEdePrograms)
{
    // Randomized mix of producers, consumers, branches (some
    // mispredicted), fences and loads; every run must terminate with
    // all ordering obligations honoured.
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        MiniSim sim(GetParam());
        Rng rng(seed * 977);
        Trace t;
        TraceBuilder b(t);
        for (int i = 0; i < 8; ++i)
            b.str(1, 2, MiniSim::dramLine(i), 0);
        b.dsbSy();
        struct Pair { std::size_t p, c; };
        std::vector<Pair> pairs;
        Edk key = 0;
        for (int i = 0; i < 60; ++i) {
            switch (rng.below(6)) {
              case 0: {
                key = static_cast<Edk>(1 + rng.below(15));
                const std::size_t p =
                    b.cvap(2, sim.nvmLine(static_cast<int>(
                                  rng.below(24))), {key, 0});
                const std::size_t c =
                    b.str(3, 4, MiniSim::dramLine(static_cast<int>(
                                    rng.below(8))), i, 0, {0, key});
                pairs.push_back({p, c});
                break;
              }
              case 1:
                b.branchCond("st" + std::to_string(rng.below(4)), 1,
                             2, rng.chance(0.5));
                break;
              case 2:
                b.ldr(5, 6, MiniSim::dramLine(static_cast<int>(
                                rng.below(8))));
                break;
              case 3:
                b.alu(static_cast<RegIndex>(7 + rng.below(4)),
                      kZeroReg);
                break;
              case 4:
                if (rng.chance(0.3))
                    b.waitKey(static_cast<Edk>(1 + rng.below(15)));
                break;
              default:
                b.str(8, 9, MiniSim::dramLine(static_cast<int>(
                                rng.below(8))), i);
                break;
            }
        }
        sim.run(t);
        EXPECT_EQ(sim.core->stats().retired, t.size())
            << "seed " << seed;
        for (const Pair &p : pairs) {
            EXPECT_GE(sim.done(p.c), sim.done(p.p))
                << "seed " << seed;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(BothRealizations, SquashEdeTest,
                         ::testing::Values(EnforceMode::IQ,
                                           EnforceMode::WB),
                         [](const auto &info) {
                             return std::string(enforceModeName(
                                 info.param));
                         });

} // namespace
} // namespace ede
