/**
 * @file
 * Unit tests for the statistics toolkit.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/stats.hh"

namespace ede {
namespace {

TEST(Histogram, EmptyHistogramReportsZeros)
{
    Histogram h(4);
    EXPECT_EQ(h.totalSamples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, CountsAndFractions)
{
    Histogram h(4);
    h.sample(0);
    h.sample(0);
    h.sample(1);
    h.sample(3);
    EXPECT_EQ(h.totalSamples(), 4u);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 0u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 0 + 1 + 3) / 4.0);
}

TEST(Histogram, OverflowClampsIntoTopBucket)
{
    Histogram h(3);
    h.sample(10);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.saturated(), 1u);
}

TEST(Histogram, MergeAccumulates)
{
    Histogram a(3);
    Histogram b(3);
    a.sample(1);
    b.sample(1);
    b.sample(2);
    a.merge(b);
    EXPECT_EQ(a.count(1), 2u);
    EXPECT_EQ(a.count(2), 1u);
    EXPECT_EQ(a.totalSamples(), 3u);
}

TEST(Histogram, ResetClears)
{
    Histogram h(3);
    h.sample(2);
    h.reset();
    EXPECT_EQ(h.totalSamples(), 0u);
    EXPECT_EQ(h.count(2), 0u);
}

TEST(Distribution, BucketsByWidth)
{
    Distribution d(128, 8);
    d.sample(0);
    d.sample(7);
    d.sample(8);
    d.sample(128);
    EXPECT_EQ(d.count(0), 2u);
    EXPECT_EQ(d.count(1), 1u);
    EXPECT_EQ(d.count(16), 1u);
    EXPECT_EQ(d.bucketLo(1), 8u);
    EXPECT_EQ(d.bucketHi(1), 15u);
    EXPECT_EQ(d.bucketHi(16), 128u);
}

TEST(Distribution, ClampsAboveMax)
{
    Distribution d(10, 1);
    d.sample(500);
    EXPECT_EQ(d.count(10), 1u);
    EXPECT_DOUBLE_EQ(d.mean(), 10.0);
}

TEST(Distribution, MeanTracksSamples)
{
    Distribution d(100, 1);
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_EQ(d.totalSamples(), 3u);
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Mean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"a", "long-header"});
    t.addRow({"xx", "y"});
    const std::string s = t.str();
    EXPECT_NE(s.find("a   long-header"), std::string::npos);
    EXPECT_NE(s.find("xx  y"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Format, DoubleAndPercent)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtPercent(0.1234, 1), "12.3%");
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RealStaysInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double x = r.real();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, BetweenIsInclusive)
{
    Rng r(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

} // namespace
} // namespace ede
