/**
 * @file
 * Unit tests for the trace container and codegen builder.
 */

#include <gtest/gtest.h>

#include "trace/builder.hh"

namespace ede {
namespace {

TEST(Trace, CountsByOpcode)
{
    Trace t;
    TraceBuilder b(t);
    b.movImm(1, 5);
    b.str(1, 2, 0x1000, 5);
    b.str(1, 2, 0x1008, 6);
    b.dsbSy();
    b.dmbSt();
    EXPECT_EQ(t.size(), 5u);
    EXPECT_EQ(t.opCount(Op::Str), 2u);
    EXPECT_EQ(t.opCount(Op::Mov), 1u);
    EXPECT_EQ(t.fenceCount(), 2u);
}

TEST(Trace, EdeCountTracksKeyUsage)
{
    Trace t;
    TraceBuilder b(t);
    b.str(1, 2, 0x1000, 5);
    b.str(1, 2, 0x1008, 5, 0, {0, 1});
    b.cvap(2, 0x1000, {1, 0});
    b.join(1, 2, 3);
    EXPECT_EQ(t.edeCount(), 3u);
}

TEST(TraceBuilder, AutoPcsAdvanceByFour)
{
    Trace t;
    TraceBuilder b(t, 0x1000);
    b.nop();
    b.nop();
    EXPECT_EQ(t[0].pc, 0x1000u);
    EXPECT_EQ(t[1].pc, 0x1004u);
}

TEST(TraceBuilder, SitePcsAreStable)
{
    Trace t;
    TraceBuilder b(t);
    const std::size_t i1 = b.branchCond("loop", 1, 2, true);
    b.nop();
    const std::size_t i2 = b.branchCond("loop", 1, 2, false);
    const std::size_t i3 = b.branchCond("other", 1, 2, true);
    EXPECT_EQ(t[i1].pc, t[i2].pc);
    EXPECT_NE(t[i1].pc, t[i3].pc);
}

TEST(TraceBuilder, StoreCarriesValueAndAddress)
{
    Trace t;
    TraceBuilder b(t);
    const std::size_t i = b.str(3, 0, 0x2000, 42, 0, {0, 1});
    EXPECT_EQ(t[i].addr, 0x2000u);
    EXPECT_EQ(t[i].val0, 42u);
    EXPECT_EQ(t[i].si.size, 8);
    EXPECT_EQ(t[i].si.edkUse, 1);
    EXPECT_TRUE(t[i].isStore());
}

TEST(TraceBuilder, StpCarriesBothValues)
{
    Trace t;
    TraceBuilder b(t);
    const std::size_t i = b.stp(0, 1, 2, 0x3000, 7, 8);
    EXPECT_EQ(t[i].val0, 7u);
    EXPECT_EQ(t[i].val1, 8u);
    EXPECT_EQ(t[i].si.size, 16);
}

TEST(TraceBuilder, CvapKeysAndAddress)
{
    Trace t;
    TraceBuilder b(t);
    const std::size_t i = b.cvap(2, 0x4000, {5, 0});
    EXPECT_TRUE(t[i].isCvap());
    EXPECT_EQ(t[i].si.edkDef, 5);
    EXPECT_EQ(t[i].addr, 0x4000u);
}

TEST(TraceBuilder, WaitKeyIsProducerAndConsumer)
{
    Trace t;
    TraceBuilder b(t);
    const std::size_t i = b.waitKey(6);
    EXPECT_EQ(t[i].op(), Op::WaitKey);
    EXPECT_EQ(t[i].si.edkUse, 6);
}

TEST(TraceBuilder, BranchOutcomeRecorded)
{
    Trace t;
    TraceBuilder b(t);
    const std::size_t i = b.branchCond("x", 1, 2, true);
    EXPECT_TRUE(t[i].taken);
    EXPECT_TRUE(t[i].isBranch());
    const std::size_t j = b.branch("y");
    EXPECT_TRUE(t[j].taken);
}

TEST(TraceBuilder, ClearResetsCounts)
{
    Trace t;
    TraceBuilder b(t);
    b.dsbSy();
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.fenceCount(), 0u);
}

TEST(TempRegPool, RotatesThroughRange)
{
    TempRegPool pool(4, 6);
    EXPECT_EQ(pool.get(), 4);
    EXPECT_EQ(pool.get(), 5);
    EXPECT_EQ(pool.get(), 6);
    EXPECT_EQ(pool.get(), 4);
}

} // namespace
} // namespace ede
