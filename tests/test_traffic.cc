/**
 * @file
 * Tests for the open-loop traffic harness (src/traffic) and the
 * RunRequest face of the Session API.
 *
 * The load-bearing guarantees:
 *
 *  - exactPermille is the *exact* nearest-rank order statistic --
 *    checked against a sort-the-whole-vector reference on the
 *    adversarial populations (n = 1, all-ties, n < 100, where a
 *    histogram or an off-by-one rank would silently lie);
 *  - generators are deterministic in their seeds, and the workload
 *    is arrival-independent: changing only the offered load leaves
 *    the closed-loop machine run bit-identical while the open-loop
 *    tail moves (the overload knee the harness exists to expose);
 *  - latency records are bit-identical across ticking modes and
 *    across --jobs counts, so CI can cmp artifacts byte for byte;
 *  - malformed requests come back as structured SimErrors
 *    (RunRequestInvalid / CoreCountKeyExhausted), and request
 *    validation does not consume the single-shot session;
 *  - traffic cells survive the result-cache snapshot round trip and
 *    every traffic knob is fingerprint-relevant.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.hh"
#include "exp/fingerprint.hh"
#include "exp/result_cache.hh"
#include "exp/runner.hh"
#include "sim/session.hh"
#include "traffic/arrival.hh"
#include "traffic/latency.hh"
#include "traffic/opmix.hh"
#include "traffic/stream_mux.hh"

namespace ede {
namespace {

using traffic::ArrivalKind;
using traffic::ArrivalProcess;
using traffic::ArrivalSpec;
using traffic::LatencySummary;
using traffic::TrafficPlan;
using traffic::TrafficResult;
using traffic::ZipfGenerator;

// ---------------------------------------------------------------- //
// Exact percentiles
// ---------------------------------------------------------------- //

/** Sort-everything reference for the nearest-rank order statistic. */
Cycle
referencePermille(std::vector<Cycle> samples, unsigned permille)
{
    std::sort(samples.begin(), samples.end());
    const std::size_t n = samples.size();
    const std::size_t rank = static_cast<std::size_t>(std::ceil(
        static_cast<double>(n) * static_cast<double>(permille) /
        1000.0));
    return samples[rank - 1];
}

void
expectMatchesReference(const std::vector<Cycle> &samples)
{
    for (unsigned permille : {1u, 500u, 990u, 999u, 1000u}) {
        std::vector<Cycle> scratch = samples;
        EXPECT_EQ(traffic::exactPermille(scratch, permille),
                  referencePermille(samples, permille))
            << "n=" << samples.size() << " permille=" << permille;
    }
}

TEST(ExactPermille, SingleSampleIsEveryPercentile)
{
    expectMatchesReference({7});
}

TEST(ExactPermille, AllTiesCollapseToTheTie)
{
    expectMatchesReference(std::vector<Cycle>(250, 42));
}

TEST(ExactPermille, SmallPopulationsHitNearestRank)
{
    // Below 100 samples p99 and p99.9 both resolve to the max --
    // the nearest rank, not an interpolation.
    for (std::size_t n : {2u, 3u, 10u, 99u}) {
        std::vector<Cycle> v;
        for (std::size_t i = 0; i < n; ++i)
            v.push_back(static_cast<Cycle>(1000 - i * 7));
        expectMatchesReference(v);
        std::vector<Cycle> scratch = v;
        EXPECT_EQ(traffic::exactPermille(scratch, 999),
                  *std::max_element(v.begin(), v.end()));
    }
}

TEST(ExactPermille, RandomPopulationsMatchReference)
{
    Rng rng(2026);
    for (std::size_t n : {100u, 101u, 999u, 1000u, 1001u, 4096u}) {
        std::vector<Cycle> v;
        for (std::size_t i = 0; i < n; ++i)
            v.push_back(rng.below(500));  // Plenty of ties.
        expectMatchesReference(v);
    }
}

TEST(Summarize, DigestIsOrderInvariant)
{
    std::vector<Cycle> asc{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    std::vector<Cycle> desc(asc.rbegin(), asc.rend());
    const LatencySummary a = traffic::summarize(asc);
    const LatencySummary b = traffic::summarize(desc);
    EXPECT_EQ(a.count, 10u);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.p999, b.p999);
    EXPECT_EQ(a.max, 10u);
    EXPECT_EQ(a.sum, 55u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.5);
}

// ---------------------------------------------------------------- //
// Generators
// ---------------------------------------------------------------- //

TEST(ArrivalProcessTest, SameSeedSameSequence)
{
    ArrivalSpec spec;
    spec.meanGap = 500.0;
    ArrivalProcess a(spec, 7);
    ArrivalProcess b(spec, 7);
    ArrivalProcess c(spec, 8);
    bool anyDiffer = false;
    Cycle prev = 0;
    for (int i = 0; i < 256; ++i) {
        const Cycle t = a.next();
        EXPECT_EQ(t, b.next());
        anyDiffer |= t != c.next();
        EXPECT_GE(t, prev);  // Arrival clock is monotone.
        prev = t;
    }
    EXPECT_TRUE(anyDiffer);
}

TEST(ArrivalProcessTest, BurstyRunsHotterThanItsCalmMean)
{
    ArrivalSpec calm;
    calm.meanGap = 1000.0;
    ArrivalSpec bursty = calm;
    bursty.kind = ArrivalKind::Bursty;
    bursty.burstFactor = 8.0;
    bursty.pSwitch = 0.5;
    ArrivalProcess a(calm, 11);
    ArrivalProcess b(bursty, 11);
    Cycle lastCalm = 0;
    Cycle lastBursty = 0;
    for (int i = 0; i < 4096; ++i) {
        lastCalm = a.next();
        lastBursty = b.next();
    }
    // Spending half its time at 8x the rate, the MMPP must finish
    // its 4096 arrivals well before the pure-Poisson clock.
    EXPECT_LT(lastBursty, lastCalm);
}

TEST(ZipfGeneratorTest, DeterministicInBoundsAndSkewed)
{
    ZipfGenerator z1(256, 0.99);
    ZipfGenerator z2(256, 0.99);
    Rng r1(5), r2(5);
    std::uint64_t hot = 0;
    for (int i = 0; i < 8192; ++i) {
        const std::uint64_t k = z1.next(r1);
        EXPECT_EQ(k, z2.next(r2));
        ASSERT_LT(k, 256u);
        if (k == 0)
            ++hot;
    }
    // Rank 0 absorbs far more than the uniform 1/256 share.
    EXPECT_GT(hot, 8192u / 32);
}

TEST(ZipfGeneratorTest, ThetaZeroIsRoughlyUniform)
{
    ZipfGenerator z(16, 0.0);
    Rng rng(9);
    std::vector<unsigned> counts(16, 0);
    for (int i = 0; i < 16000; ++i)
        ++counts[z.next(rng)];
    for (unsigned c : counts) {
        EXPECT_GT(c, 600u);
        EXPECT_LT(c, 1400u);
    }
}

// ---------------------------------------------------------------- //
// Plan validation
// ---------------------------------------------------------------- //

TEST(ValidateTrafficPlan, RejectsEachMalformedKnob)
{
    const auto expectInvalid = [](TrafficPlan p, unsigned cores = 2) {
        const traffic::TrafficCheck check =
            traffic::validateTrafficPlan(p, Config::WB, cores);
        EXPECT_EQ(check.kind, SimErrorKind::RunRequestInvalid)
            << check.message;
    };
    TrafficPlan ok;
    EXPECT_TRUE(
        traffic::validateTrafficPlan(ok, Config::WB, 2).ok());

    TrafficPlan p = ok;
    p.streams = 0;
    expectInvalid(p);
    p = ok;
    p.txnsPerStream = 0;
    expectInvalid(p);
    p = ok;
    p.opsPerTxn = 0;
    expectInvalid(p);
    p = ok;
    p.mix.keys = 0;
    expectInvalid(p);
    p = ok;
    p.mix.keys = traffic::kTrafficMaxKeys + 1;
    expectInvalid(p);
    p = ok;
    p.mix.readFraction = 1.5;
    expectInvalid(p);
    p = ok;
    p.mix.zipfTheta = 1.0;  // Divergent harmonic case.
    expectInvalid(p);
    p = ok;
    p.arrival.meanGap = 0.0;
    expectInvalid(p);
    p = ok;
    p.arrival.burstFactor = 0.5;
    expectInvalid(p);
    p = ok;
    p.arrival.pSwitch = -0.1;
    expectInvalid(p);
    expectInvalid(ok, 0);
}

TEST(ValidateTrafficPlan, RejectsOverloadAndSplitKnobMisuse)
{
    const auto expectInvalid = [](TrafficPlan p) {
        const traffic::TrafficCheck check =
            traffic::validateTrafficPlan(p, Config::WB, 2);
        EXPECT_EQ(check.kind, SimErrorKind::RunRequestInvalid)
            << check.message;
        return check;
    };
    TrafficPlan ok;

    // A plan with fewer transactions than streams would leave some
    // stream empty; the detail names the contract.
    TrafficPlan p = ok;
    p.streams = 4;
    p.totalTxns = 3;
    const traffic::TrafficCheck starved = expectInvalid(p);
    EXPECT_NE(std::string(starved.message)
                  .find("more streams than transactions"),
              std::string::npos);
    p.totalTxns = 4;
    EXPECT_TRUE(traffic::validateTrafficPlan(p, Config::WB, 2).ok());

    p = ok;
    p.totalTxns = -1;
    expectInvalid(p);
    p = ok;
    p.warmupPermille = 1000;  // Everything warmup = no steady state.
    expectInvalid(p);
    p = ok;
    p.latencyWindows = 0;
    expectInvalid(p);
    p = ok;
    p.latencyWindows = 65;
    expectInvalid(p);

    // Closed-pool arrivals.
    p = ok;
    p.arrival.kind = ArrivalKind::ClosedPool;
    EXPECT_TRUE(traffic::validateTrafficPlan(p, Config::WB, 2).ok());
    p.arrival.poolSize = 0;
    expectInvalid(p);
    p.arrival.poolSize = 2;
    p.arrival.thinkTime = -1.0;
    expectInvalid(p);

    // Retry/degrade knobs require an admission policy to act under.
    p = ok;
    p.policy.retryBudget = 4;
    expectInvalid(p);
    p = ok;
    p.policy.degrade = true;
    expectInvalid(p);

    // Each policy's own parameters.
    p = ok;
    p.policy.admission = traffic::AdmissionKind::Deadline;
    p.policy.deadline = 0;
    expectInvalid(p);
    p.policy.deadline = 1000;
    EXPECT_TRUE(traffic::validateTrafficPlan(p, Config::WB, 2).ok());
    p.policy.queueDepth = 0;
    expectInvalid(p);
    p = ok;
    p.policy.admission = traffic::AdmissionKind::TokenBucket;
    p.policy.tokenRatePerKCycle = 0;
    p.policy.tokenBurst = 4;
    expectInvalid(p);
    p.policy.tokenRatePerKCycle = 8;
    p.policy.tokenBurst = 0;
    expectInvalid(p);
    p.policy.tokenBurst = 4;
    EXPECT_TRUE(traffic::validateTrafficPlan(p, Config::WB, 2).ok());
    p.policy.retryBudget = 2;
    p.policy.retryBackoffBase = 0;
    expectInvalid(p);
    p.policy.retryBackoffBase = 512;
    p.policy.retryBackoffCap = 256;  // Cap below base.
    expectInvalid(p);

    // Hysteresis needs recover < degrade.
    p = ok;
    p.policy.admission = traffic::AdmissionKind::DropTail;
    p.policy.degrade = true;
    p.policy.shedWindow = 0;
    expectInvalid(p);
    p.policy.shedWindow = 16;
    p.policy.degradePermille = 0;
    expectInvalid(p);
    p.policy.degradePermille = 500;
    p.policy.recoverPermille = 500;
    expectInvalid(p);
    p.policy.recoverPermille = 100;
    EXPECT_TRUE(traffic::validateTrafficPlan(p, Config::WB, 2).ok());
}

TEST(ValidateTrafficPlan, TotalTxnsSplitsRoundRobin)
{
    TrafficPlan p;
    p.streams = 3;
    p.totalTxns = 8;
    EXPECT_EQ(traffic::trafficTxnsOfStream(p, 0), 3u);
    EXPECT_EQ(traffic::trafficTxnsOfStream(p, 1), 3u);
    EXPECT_EQ(traffic::trafficTxnsOfStream(p, 2), 2u);
    p.totalTxns = 0;  // Fall back to the per-stream count.
    EXPECT_EQ(traffic::trafficTxnsOfStream(p, 2),
              static_cast<std::uint64_t>(p.txnsPerStream));
}

TEST(ValidateTrafficPlan, EdeConfigsAreKeyLimited)
{
    TrafficPlan plan;
    const traffic::TrafficCheck ede = traffic::validateTrafficPlan(
        plan, Config::WB, traffic::kMaxTrafficEdeCores + 1);
    EXPECT_EQ(ede.kind, SimErrorKind::CoreCountKeyExhausted);
    // Fence-based configs spend no keys, so any core count is fine.
    EXPECT_TRUE(traffic::validateTrafficPlan(
                    plan, Config::B,
                    traffic::kMaxTrafficEdeCores + 1)
                    .ok());
    EXPECT_TRUE(traffic::validateTrafficPlan(
                    plan, Config::WB, traffic::kMaxTrafficEdeCores)
                    .ok());
}

// ---------------------------------------------------------------- //
// Session / RunRequest
// ---------------------------------------------------------------- //

TrafficPlan
tinyPlan(double meanGap = 2000.0)
{
    TrafficPlan plan;
    plan.streams = 2;
    plan.txnsPerStream = 12;
    plan.opsPerTxn = 2;
    plan.mix.keys = 32;
    plan.arrival.meanGap = meanGap;
    return plan;
}

TEST(SessionRequest, EmptyRequestIsInvalidAndDoesNotConsume)
{
    Session s(SimConfig::paper(Config::WB));
    const SimResult bad = s.run(RunRequest{});
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error.kind, SimErrorKind::RunRequestInvalid);
    EXPECT_FALSE(s.ran());

    // The rejection left the session fresh: a valid request runs.
    const SimResult good = s.run(RunRequest::ofTraffic(tinyPlan()));
    EXPECT_TRUE(good.ok());
    EXPECT_TRUE(s.ran());
}

TEST(SessionRequest, TraceCountMustMatchCoreCount)
{
    Session s(SimConfig::paper(Config::B).withCoreCount(2));
    Trace t;
    TraceBuilder(t).movImm(1, 7);
    const SimResult r = s.run(RunRequest::of(t));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error.kind, SimErrorKind::RunRequestInvalid);
    EXPECT_NE(r.error.detail.find("1 trace"), std::string::npos);
}

TEST(SessionRequest, MalformedTrafficPlanReportsTheKnob)
{
    Session s(SimConfig::paper(Config::WB));
    TrafficPlan plan = tinyPlan();
    plan.mix.zipfTheta = 1.0;
    const SimResult r = s.run(RunRequest::ofTraffic(plan));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error.kind, SimErrorKind::RunRequestInvalid);
    EXPECT_NE(r.error.detail.find("zipf theta"), std::string::npos);
}

TEST(SessionRequest, TrafficRunPopulatesLatencyRecords)
{
    const TrafficPlan plan = tinyPlan();
    Session s(SimConfig::paper(Config::WB).withCoreCount(2));
    const SimResult r = s.run(RunRequest::ofTraffic(plan));
    ASSERT_TRUE(r.ok());

    const TrafficResult &t = r.stats.traffic;
    EXPECT_TRUE(t.enabled);
    const std::uint64_t txns =
        static_cast<std::uint64_t>(plan.streams) *
        static_cast<std::uint64_t>(plan.txnsPerStream);
    EXPECT_EQ(t.open.count, txns);
    EXPECT_EQ(t.service.count, txns);
    ASSERT_EQ(t.streams.size(), plan.streams);
    for (unsigned i = 0; i < plan.streams; ++i) {
        EXPECT_EQ(t.streams[i].stream, i);
        EXPECT_EQ(t.streams[i].core, i % 2);
        EXPECT_EQ(t.streams[i].open.count,
                  static_cast<std::uint64_t>(plan.txnsPerStream));
    }
    // Order statistics are ordered; open >= service pointwise, so
    // the open mean dominates the service mean.
    EXPECT_LE(t.open.p50, t.open.p99);
    EXPECT_LE(t.open.p99, t.open.p999);
    EXPECT_LE(t.open.p999, t.open.max);
    EXPECT_GE(t.open.mean(), t.service.mean());

    // A plain trace run must NOT carry traffic records.
    Session plain(SimConfig::paper(Config::WB));
    Trace trace;
    TraceBuilder(trace).movImm(1, 7);
    const SimResult pr = plain.run(RunRequest::of(trace));
    ASSERT_TRUE(pr.ok());
    EXPECT_FALSE(pr.stats.traffic.enabled);
}

/** The knee invariant, at Session level. */
TEST(SessionRequest, OfferedLoadMovesOpenTailButNotTheMachine)
{
    const auto runAt = [](double gap) {
        Session s(SimConfig::paper(Config::WB).withCoreCount(2));
        const SimResult r =
            s.run(RunRequest::ofTraffic(tinyPlan(gap)));
        EXPECT_TRUE(r.ok());
        return r;
    };
    const SimResult light = runAt(60000.0);
    const SimResult heavy = runAt(60.0);

    // The trace, and so the whole machine run, is arrival-blind...
    EXPECT_EQ(light.stats.cycles, heavy.stats.cycles);
    EXPECT_EQ(light.stats.core.retired, heavy.stats.core.retired);
    EXPECT_EQ(light.stats.traffic.service.p50,
              heavy.stats.traffic.service.p50);
    EXPECT_EQ(light.stats.traffic.service.max,
              heavy.stats.traffic.service.max);
    // ...while the open-loop tail sees the queueing delay.
    EXPECT_GT(heavy.stats.traffic.open.p99,
              light.stats.traffic.open.p99);
}

void
expectSameSummary(const LatencySummary &a, const LatencySummary &b)
{
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.p999, b.p999);
    EXPECT_EQ(a.max, b.max);
    EXPECT_EQ(a.sum, b.sum);
}

TEST(SessionRequest, LatencyRecordsAreTickerInvariant)
{
    const auto runWith = [](TickingMode mode) {
        SimConfig cfg = SimConfig::paper(Config::WB);
        CoreParams core = cfg.params().core;
        core.ticking = mode;
        Session s(cfg.withCore(core).withCoreCount(2));
        const SimResult r =
            s.run(RunRequest::ofTraffic(tinyPlan(500.0)));
        EXPECT_TRUE(r.ok());
        return r.stats.traffic;
    };
    const TrafficResult skip = runWith(TickingMode::SkipAhead);
    const TrafficResult ref = runWith(TickingMode::Reference);
    expectSameSummary(skip.open, ref.open);
    expectSameSummary(skip.service, ref.service);
    ASSERT_EQ(skip.streams.size(), ref.streams.size());
    for (std::size_t i = 0; i < skip.streams.size(); ++i) {
        expectSameSummary(skip.streams[i].open, ref.streams[i].open);
        expectSameSummary(skip.streams[i].service,
                          ref.streams[i].service);
    }
}

// ---------------------------------------------------------------- //
// Experiment layer
// ---------------------------------------------------------------- //

exp::ExperimentPoint
trafficPoint(double gap, const std::string &label)
{
    exp::ExperimentPoint pt;
    pt.label = label;
    pt.config = Config::WB;
    pt.simParams =
        SimConfig::paper(Config::WB).withCoreCount(2).params();
    pt.traffic = true;
    pt.trafficPlan = tinyPlan(gap);
    return pt;
}

TEST(TrafficExp, ParallelCellsAreBitIdenticalToSerial)
{
    exp::ExperimentPlan plan;
    plan.add(trafficPoint(6000.0, "WB/g6000"));
    plan.add(trafficPoint(60.0, "WB/g60"));

    exp::RunnerOptions serial;
    serial.jobs = 1;
    serial.printSummary = false;
    exp::RunnerOptions parallel = serial;
    parallel.jobs = 8;

    const exp::ExperimentResults a = exp::runPlan(plan, serial);
    const exp::ExperimentResults b = exp::runPlan(plan, parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // serializeCell covers the whole persisted snapshot,
        // latency records included.
        EXPECT_EQ(exp::serializeCell(a.cells()[i]),
                  exp::serializeCell(b.cells()[i]));
    }
    EXPECT_TRUE(a.cells()[0].result.traffic.enabled);
}

TEST(TrafficExp, SnapshotRoundTripsTrafficSection)
{
    exp::ExperimentPlan plan;
    plan.add(trafficPoint(500.0, "WB/g500"));
    exp::RunnerOptions opt;
    opt.jobs = 1;
    opt.printSummary = false;
    const exp::ExperimentResults results = exp::runPlan(plan, opt);
    const exp::ExperimentCell &cell = results.cells().front();
    ASSERT_TRUE(cell.result.traffic.enabled);

    const auto back = exp::deserializeCell(
        exp::serializeCell(cell), cell.point, cell.fingerprint);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(exp::serializeCell(*back), exp::serializeCell(cell));
    EXPECT_TRUE(back->result.traffic.enabled);
    expectSameSummary(back->result.traffic.open,
                      cell.result.traffic.open);
    ASSERT_EQ(back->result.traffic.streams.size(),
              cell.result.traffic.streams.size());
}

TEST(TrafficExp, EveryTrafficKnobIsFingerprintRelevant)
{
    const exp::ExperimentPoint base = trafficPoint(500.0, "base");
    const std::uint64_t fp = exp::fingerprintPoint(base);

    exp::ExperimentPoint p = base;
    p.traffic = false;
    EXPECT_NE(exp::fingerprintPoint(p), fp);

    p = base;
    p.trafficPlan.arrival.meanGap = 501.0;
    EXPECT_NE(exp::fingerprintPoint(p), fp);
    p = base;
    p.trafficPlan.arrival.kind = ArrivalKind::Bursty;
    EXPECT_NE(exp::fingerprintPoint(p), fp);
    p = base;
    p.trafficPlan.streams += 1;
    EXPECT_NE(exp::fingerprintPoint(p), fp);
    p = base;
    p.trafficPlan.txnsPerStream += 1;
    EXPECT_NE(exp::fingerprintPoint(p), fp);
    p = base;
    p.trafficPlan.opsPerTxn += 1;
    EXPECT_NE(exp::fingerprintPoint(p), fp);
    p = base;
    p.trafficPlan.mix.zipfTheta = 0.5;
    EXPECT_NE(exp::fingerprintPoint(p), fp);
    p = base;
    p.trafficPlan.mix.readFraction = 0.25;
    EXPECT_NE(exp::fingerprintPoint(p), fp);
    p = base;
    p.trafficPlan.mix.keys = 64;
    EXPECT_NE(exp::fingerprintPoint(p), fp);
    p = base;
    p.trafficPlan.seed = 43;
    EXPECT_NE(exp::fingerprintPoint(p), fp);

    // And an identical copy collides, or the cache never hits.
    EXPECT_EQ(exp::fingerprintPoint(trafficPoint(500.0, "base")), fp);
}

TEST(TrafficExp, EveryOverloadKnobIsFingerprintRelevant)
{
    const exp::ExperimentPoint base = trafficPoint(500.0, "base");
    const std::uint64_t fp = exp::fingerprintPoint(base);
    const auto differs = [&](auto mutate) {
        exp::ExperimentPoint p = base;
        mutate(p.trafficPlan);
        EXPECT_NE(exp::fingerprintPoint(p), fp);
    };
    differs([](TrafficPlan &t) { t.totalTxns = 24; });
    differs([](TrafficPlan &t) { t.warmupPermille = 250; });
    differs([](TrafficPlan &t) { t.latencyWindows = 16; });
    differs([](TrafficPlan &t) {
        t.arrival.kind = ArrivalKind::ClosedPool;
    });
    differs([](TrafficPlan &t) { t.arrival.poolSize = 8; });
    differs([](TrafficPlan &t) { t.arrival.thinkTime = 1234.0; });
    differs([](TrafficPlan &t) {
        t.policy.admission = traffic::AdmissionKind::DropTail;
    });
    differs([](TrafficPlan &t) { t.policy.queueDepth = 17; });
    differs([](TrafficPlan &t) { t.policy.deadline = 9000; });
    differs([](TrafficPlan &t) { t.policy.tokenRatePerKCycle = 3; });
    differs([](TrafficPlan &t) { t.policy.tokenBurst = 3; });
    differs([](TrafficPlan &t) { t.policy.retryBudget = 3; });
    differs([](TrafficPlan &t) { t.policy.retryBackoffBase = 128; });
    differs([](TrafficPlan &t) { t.policy.retryBackoffCap = 4096; });
    differs([](TrafficPlan &t) { t.policy.degrade = true; });
    differs([](TrafficPlan &t) { t.policy.shedWindow = 64; });
    differs([](TrafficPlan &t) { t.policy.degradePermille = 700; });
    differs([](TrafficPlan &t) { t.policy.recoverPermille = 50; });
}

} // namespace
} // namespace ede
