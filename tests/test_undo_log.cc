/**
 * @file
 * Unit tests for undo-log recovery over crash images.
 */

#include <gtest/gtest.h>

#include "nvm/undo_log.hh"

namespace ede {
namespace {

UndoLogLayout
layout()
{
    UndoLogLayout l;
    l.stateAddr = 2ull << 30;
    l.entriesBase = l.stateAddr + 64;
    l.capacity = 16;
    return l;
}

void
putEntry(MemoryImage &img, const UndoLogLayout &l, std::uint64_t i,
         Addr target, std::uint64_t old_val)
{
    img.write<std::uint64_t>(l.entryAddr(i),
                             sealUndoEntry(target, old_val));
    img.write<std::uint64_t>(l.entryAddr(i) + 8, old_val);
}

TEST(UndoLog, EmptyActiveLogIsANoop)
{
    MemoryImage img;
    const auto l = layout();
    img.write<std::uint64_t>(l.stateAddr, kTxActive);
    const auto r = recoverUndoLog(img, l);
    EXPECT_FALSE(r.sawCommitted);
    EXPECT_EQ(r.entriesApplied, 0u);
    EXPECT_EQ(r.entriesZeroed, 0u);
}

TEST(UndoLog, ActiveLogRollsBack)
{
    MemoryImage img;
    const auto l = layout();
    const Addr x = l.stateAddr + 0x10000;
    img.write<std::uint64_t>(x, 999);        // Uncommitted new value.
    putEntry(img, l, 0, x, 5);               // Old value was 5.
    const auto r = recoverUndoLog(img, l);
    EXPECT_FALSE(r.sawCommitted);
    EXPECT_EQ(r.entriesApplied, 1u);
    EXPECT_EQ(img.read<std::uint64_t>(x), 5u);
    // The log is left empty and active.
    EXPECT_EQ(img.read<std::uint64_t>(l.entryAddr(0)), 0u);
    EXPECT_EQ(img.read<std::uint64_t>(l.stateAddr), kTxActive);
}

TEST(UndoLog, RollbackAppliesNewestFirst)
{
    MemoryImage img;
    const auto l = layout();
    const Addr x = l.stateAddr + 0x10000;
    img.write<std::uint64_t>(x, 3);
    putEntry(img, l, 0, x, 1); // First write logged old value 1.
    putEntry(img, l, 1, x, 2); // Second write logged old value 2.
    recoverUndoLog(img, l);
    // Rolling back must restore the OLDEST value.
    EXPECT_EQ(img.read<std::uint64_t>(x), 1u);
}

TEST(UndoLog, CommittedLogIsNotApplied)
{
    MemoryImage img;
    const auto l = layout();
    const Addr x = l.stateAddr + 0x10000;
    img.write<std::uint64_t>(x, 999);
    putEntry(img, l, 0, x, 5);
    img.write<std::uint64_t>(l.stateAddr, kTxCommitted);
    const auto r = recoverUndoLog(img, l);
    EXPECT_TRUE(r.sawCommitted);
    EXPECT_EQ(r.entriesApplied, 0u);
    EXPECT_EQ(r.entriesZeroed, 1u);
    // Data keeps the committed value; log is truncated.
    EXPECT_EQ(img.read<std::uint64_t>(x), 999u);
    EXPECT_EQ(img.read<std::uint64_t>(l.stateAddr), kTxActive);
}

TEST(UndoLog, SparseValidEntriesHandled)
{
    MemoryImage img;
    const auto l = layout();
    const Addr x = l.stateAddr + 0x10000;
    const Addr y = x + 64;
    img.write<std::uint64_t>(x, 10);
    img.write<std::uint64_t>(y, 20);
    putEntry(img, l, 2, x, 1);
    putEntry(img, l, 7, y, 2);
    const auto r = recoverUndoLog(img, l);
    EXPECT_EQ(r.entriesApplied, 2u);
    EXPECT_EQ(img.read<std::uint64_t>(x), 1u);
    EXPECT_EQ(img.read<std::uint64_t>(y), 2u);
}

TEST(UndoLog, TornValueWordIsDetectedAndSkipped)
{
    MemoryImage img;
    const auto l = layout();
    const Addr x = l.stateAddr + 0x10000;
    const Addr y = x + 64;
    img.write<std::uint64_t>(x, 10);
    img.write<std::uint64_t>(y, 20);
    putEntry(img, l, 0, x, 1);
    // Entry 1 tore between its halves: the addr word was sealed for
    // old value 2, but the value word never persisted.
    img.write<std::uint64_t>(l.entryAddr(1), sealUndoEntry(y, 2));
    img.write<std::uint64_t>(l.entryAddr(1) + 8, 777);
    const auto r = recoverUndoLog(img, l);
    EXPECT_EQ(r.entriesTorn, 1u);
    EXPECT_EQ(r.entriesApplied, 1u);
    // The intact entry rolled back; the torn one was not replayed.
    EXPECT_EQ(img.read<std::uint64_t>(x), 1u);
    EXPECT_EQ(img.read<std::uint64_t>(y), 20u);
    // Torn entries are truncated with the rest.
    EXPECT_EQ(img.read<std::uint64_t>(l.entryAddr(1)), 0u);
    EXPECT_EQ(img.read<std::uint64_t>(l.stateAddr), kTxActive);
}

TEST(UndoLog, TornAddrWordIsDetectedAndSkipped)
{
    MemoryImage img;
    const auto l = layout();
    const Addr y = l.stateAddr + 0x10000;
    img.write<std::uint64_t>(y, 20);
    // The value word persisted but the addr word's checksum did not:
    // the image holds the bare target address with zero seal bits.
    ASSERT_NE(undoEntryChecksum(y, 2), 0u);
    img.write<std::uint64_t>(l.entryAddr(0), y);
    img.write<std::uint64_t>(l.entryAddr(0) + 8, 2);
    const auto r = recoverUndoLog(img, l);
    EXPECT_EQ(r.entriesTorn, 1u);
    EXPECT_EQ(r.entriesApplied, 0u);
    EXPECT_EQ(img.read<std::uint64_t>(y), 20u);
    EXPECT_EQ(img.read<std::uint64_t>(l.entryAddr(0)), 0u);
}

TEST(UndoLog, SealRoundTrips)
{
    const Addr target = (3ull << 30) + 0x1238;
    const std::uint64_t sealed = sealUndoEntry(target, 41);
    EXPECT_EQ(undoEntryTarget(sealed), target);
    EXPECT_TRUE(undoEntryIntact(sealed, 41));
    EXPECT_FALSE(undoEntryIntact(sealed, 42));
    EXPECT_FALSE(undoEntryIntact(sealed ^ (1ull << 50), 41));
}

TEST(UndoLog, RecoveryIsIdempotent)
{
    MemoryImage img;
    const auto l = layout();
    const Addr x = l.stateAddr + 0x10000;
    img.write<std::uint64_t>(x, 9);
    putEntry(img, l, 0, x, 4);
    recoverUndoLog(img, l);
    const auto r2 = recoverUndoLog(img, l);
    EXPECT_EQ(r2.entriesApplied, 0u);
    EXPECT_EQ(img.read<std::uint64_t>(x), 4u);
}

} // namespace
} // namespace ede
