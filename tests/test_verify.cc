/**
 * @file
 * Unit tests for the static EDK dataflow verifier: every diagnostic
 * kind is reachable, anchored at the right instruction index, and
 * legal programs -- including both wait_key encoding conventions and
 * fence-resolved key reuse -- are accepted.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "trace/builder.hh"
#include "verify/verifier.hh"

namespace ede {
namespace {

std::vector<StaticInst>
mustAssemble(std::string_view listing)
{
    std::string err;
    const auto program = assemble(listing, &err);
    EXPECT_TRUE(program.has_value()) << err;
    return program.value_or(std::vector<StaticInst>{});
}

TEST(Verify, EmptyProgramAccepted)
{
    const VerifyReport r = verifyProgram({});
    EXPECT_TRUE(r.accepted());
    EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Verify, AcceptsFigure7StylePersistPair)
{
    const VerifyReport r = verifyProgram(mustAssemble(R"(
        dc cvap (1,0), x2
        str (0,1), x3, [x0]
        wait_key (1)
    )"));
    EXPECT_TRUE(r.accepted()) << r.describe();
}

TEST(Verify, RejectsOutOfRangeKeyEncoding)
{
    // The assembler already rejects these; the verifier guards the
    // raw-encoding path (decoder output, hand-built traces).
    std::vector<StaticInst> p = mustAssemble("str x3, [x0]");
    p[0].edkUse = 16;
    const VerifyReport r = verifyProgram(p);
    EXPECT_FALSE(r.accepted());
    EXPECT_EQ(r.countOf(VerifyKind::InvalidKeyEncoding), 1u);
    ASSERT_NE(r.firstError(), nullptr);
    EXPECT_EQ(r.firstError()->instIdx, 0u);
}

TEST(Verify, RejectsSecondUseKeyOutsideJoin)
{
    std::vector<StaticInst> p = mustAssemble("str (1,0), x3, [x0]");
    p[0].edkUse2 = 2;
    const VerifyReport r = verifyProgram(p);
    EXPECT_FALSE(r.accepted());
    EXPECT_GE(r.countOf(VerifyKind::InvalidKeyEncoding), 1u);
}

TEST(Verify, RejectsKeysOnNonEdeOpcode)
{
    std::vector<StaticInst> p = mustAssemble(R"(
        nop
        add x1, x2, #4
    )");
    p[1].edkDef = 3;
    const VerifyReport r = verifyProgram(p);
    EXPECT_FALSE(r.accepted());
    EXPECT_EQ(r.countOf(VerifyKind::KeysOnNonEdeOpcode), 1u);
    EXPECT_EQ(r.firstError()->instIdx, 1u);
}

TEST(Verify, RejectsUseOfUndefinedKey)
{
    const VerifyReport r = verifyProgram(mustAssemble(R"(
        str (0,5), x3, [x0]
    )"));
    EXPECT_FALSE(r.accepted());
    EXPECT_EQ(r.countOf(VerifyKind::UseOfUndefinedKey), 1u);
    EXPECT_EQ(r.firstError()->key, 5);
}

TEST(Verify, RejectsWaitOnDeadKey)
{
    const VerifyReport r = verifyProgram(mustAssemble("wait_key (7)"));
    EXPECT_FALSE(r.accepted());
    EXPECT_EQ(r.countOf(VerifyKind::WaitOnDeadKey), 1u);
}

TEST(Verify, RejectsRedefineWhilePendingAndNamesTheDef)
{
    const VerifyReport r = verifyProgram(mustAssemble(R"(
        dc cvap (2,0), x1
        dc cvap (2,0), x1
    )"));
    EXPECT_FALSE(r.accepted());
    ASSERT_EQ(r.countOf(VerifyKind::RedefineWhilePending), 1u);
    const VerifyDiagnostic *e = r.firstError();
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->instIdx, 1u);
    EXPECT_EQ(e->relatedIdx, 0u); // Points at the dropped definition.
}

TEST(Verify, RedefiningConsumedKeyIsLegal)
{
    // Once a definition has a consumer the dependence is recorded in
    // hardware; overwriting the EDM slot loses nothing.
    const VerifyReport r = verifyProgram(mustAssemble(R"(
        dc cvap (2,0), x1
        str (0,2), x3, [x0]
        dc cvap (2,0), x1
        str (0,2), x4, [x0]
        wait_key (2)
    )"));
    EXPECT_TRUE(r.accepted()) << r.describe();
}

TEST(Verify, RejectsSelfLoop)
{
    const VerifyReport r = verifyProgram(mustAssemble(R"(
        dc cvap (1,0), x1
        str (1,1), x3, [x0]
    )"));
    EXPECT_FALSE(r.accepted());
    EXPECT_EQ(r.countOf(VerifyKind::DependenceCycle), 1u);
    EXPECT_EQ(r.firstError()->instIdx, 1u);
}

TEST(Verify, RejectsCycleBuiltThroughChains)
{
    // Key 2 orders after key 1; redefining key 1 to order after key 2
    // closes the loop (1 was consumed, so the redefinition itself is
    // legal -- only the cycle is the error).
    const VerifyReport r = verifyProgram(mustAssemble(R"(
        str (1,0), x3, [x0]
        str (2,1), x4, [x0]
        str (1,2), x5, [x0]
    )"));
    EXPECT_FALSE(r.accepted());
    EXPECT_EQ(r.countOf(VerifyKind::DependenceCycle), 1u);
    EXPECT_EQ(r.firstError()->instIdx, 2u);
}

TEST(Verify, RejectsCycleBuiltThroughJoin)
{
    const VerifyReport r = verifyProgram(mustAssemble(R"(
        str (1,0), x3, [x0]
        str (2,0), x4, [x0]
        str (0,1), x5, [x0]
        str (0,2), x6, [x0]
        join (1,2,0)
        join (2,1,0)
    )"));
    EXPECT_FALSE(r.accepted());
    EXPECT_GE(r.countOf(VerifyKind::DependenceCycle), 1u);
}

TEST(Verify, DsbResolvesEveryLiveKey)
{
    // Regression: the fence must run the semantic pass even though it
    // carries no key operands, or the reuse below looks like a
    // redefinition of a pending key.
    const VerifyReport r = verifyProgram(mustAssemble(R"(
        dc cvap (5,0), x1
        dsb sy
        dc cvap (5,0), x1
        dsb sy
    )"));
    EXPECT_TRUE(r.accepted()) << r.describe();
}

TEST(Verify, WaitAllKeysResolvesEveryLiveKey)
{
    const VerifyReport r = verifyProgram(mustAssemble(R"(
        dc cvap (3,0), x1
        dc cvap (4,0), x1
        wait_all_keys
        dc cvap (3,0), x1
        wait_key (3)
    )"));
    EXPECT_TRUE(r.accepted()) << r.describe();
}

TEST(Verify, ConsumingResolvedKeyCarriesNoOrdering)
{
    // After wait_key the producer provably completed; a later use
    // contributes nothing to the chain, so def(1) <- use(1) is not a
    // self-loop here.
    const VerifyReport r = verifyProgram(mustAssemble(R"(
        dc cvap (1,0), x1
        wait_key (1)
        str (1,1), x3, [x0]
        wait_key (1)
    )"));
    EXPECT_TRUE(r.accepted()) << r.describe();
}

TEST(Verify, WaitKeyAcceptsBothEncodingConventions)
{
    // The assembler emits def == use (Section IV-B2)...
    EXPECT_TRUE(verifyProgram(mustAssemble(R"(
        dc cvap (4,0), x1
        wait_key (4)
    )")).accepted());

    // ...while the trace layer leaves def zero.
    Trace t;
    TraceBuilder b(t);
    b.cvap(2, 0x100000, {4, 0});
    b.waitKey(4);
    EXPECT_EQ(t.at(1).si.edkDef, kZeroEdk);
    EXPECT_TRUE(verifyTrace(t).accepted());
}

TEST(Verify, RejectsWaitAllKeysWithKeyOperands)
{
    std::vector<StaticInst> p = mustAssemble("wait_all_keys");
    p[0].edkUse = 3;
    const VerifyReport r = verifyProgram(p);
    EXPECT_FALSE(r.accepted());
    EXPECT_GE(r.countOf(VerifyKind::InvalidKeyEncoding), 1u);
}

TEST(Verify, ReducedEdmCapacityIsEnforced)
{
    const std::vector<StaticInst> p = mustAssemble(R"(
        dc cvap (1,0), x1
        dc cvap (2,0), x1
        dc cvap (3,0), x1
        wait_all_keys
    )");
    VerifyOptions opt;
    opt.edmCapacity = 2;
    const VerifyReport r = verifyProgram(p, opt);
    EXPECT_FALSE(r.accepted());
    EXPECT_EQ(r.countOf(VerifyKind::EdmCapacityExceeded), 1u);
    EXPECT_EQ(r.firstError()->instIdx, 2u);

    // The architectural 15-slot map can hold all three.
    EXPECT_TRUE(verifyProgram(p).accepted());
}

TEST(Verify, UnconsumedDefIsOnlyAWarning)
{
    const VerifyReport r = verifyProgram(mustAssemble(R"(
        dc cvap (6,0), x1
    )"));
    EXPECT_TRUE(r.accepted());
    EXPECT_EQ(r.countOf(VerifyKind::UnconsumedDef), 1u);
    EXPECT_EQ(r.diagnostics.at(0).severity, VerifySeverity::Warning);

    VerifyOptions quiet;
    quiet.warnUnconsumed = false;
    EXPECT_TRUE(verifyProgram(mustAssemble("dc cvap (6,0), x1"),
                              quiet).diagnostics.empty());
}

TEST(Verify, FirstErrorIsLowestIndex)
{
    const VerifyReport r = verifyProgram(mustAssemble(R"(
        nop
        str (0,9), x3, [x0]
        wait_key (9)
    )"));
    EXPECT_FALSE(r.accepted());
    ASSERT_NE(r.firstError(), nullptr);
    EXPECT_EQ(r.firstError()->instIdx, 1u);
    EXPECT_EQ(r.firstError()->kind, VerifyKind::UseOfUndefinedKey);
}

TEST(Verify, TraceAndProgramPathsAgree)
{
    Trace t;
    TraceBuilder b(t);
    b.cvap(2, 0x100000, {1, 0});
    b.str(3, 2, 0x100040, 7, 0, {0, 1});
    b.waitKey(1);
    const VerifyReport rt = verifyTrace(t);
    EXPECT_TRUE(rt.accepted()) << rt.describe();
    EXPECT_EQ(rt.instructions, t.size());
}

} // namespace
} // namespace ede
