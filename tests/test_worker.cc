/**
 * @file
 * Tests for the process-isolated experiment backend: worker failure
 * classification (crash / timeout / OOM / SimFault), stderr capture,
 * the retry/backoff policy, the crash-safe sweep journal, quarantine
 * semantics of the isolated runner, journal-driven resume, and the
 * SimFaultError propagation contract in sim::Session and
 * WorkloadHarness that the workers rely on.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "apps/harness.hh"
#include "exp/fingerprint.hh"
#include "exp/journal.hh"
#include "exp/result_cache.hh"
#include "exp/runner.hh"
#include "exp/worker.hh"
#include "sim_test_util.hh"

namespace ede {
namespace {

using exp::ExperimentPlan;
using exp::ExperimentResults;
using exp::JobFailure;
using exp::JobOutcome;
using exp::JournalEntry;
using exp::RetryPolicy;
using exp::RunnerOptions;
using exp::SweepJournal;
using exp::WorkerLimits;
using exp::WorkerRun;

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

RunSpec
tiny()
{
    RunSpec spec;
    spec.txns = 2;
    spec.opsPerTxn = 4;
    return spec;
}

/** A scratch directory under the build tree, wiped per use. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = "worker_test_scratch/" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Quick retry policy so failure tests don't sleep for real. */
RetryPolicy
fastRetry(unsigned attempts = 1)
{
    RetryPolicy r;
    r.maxAttempts = attempts;
    r.backoffBaseMs = 1;
    r.backoffMaxMs = 2;
    return r;
}

// ---------------------------------------------------------------- //
// runInProcess: classification
// ---------------------------------------------------------------- //

TEST(Worker, ShipsThePayloadBack)
{
    const WorkerRun run = exp::runInProcess(
        [] { return std::string("hello from the child\nline 2"); },
        WorkerLimits{});
    ASSERT_TRUE(run.ok()) << run.failure.describe();
    EXPECT_EQ(run.payload, "hello from the child\nline 2");
}

TEST(Worker, ClassifiesAbortAsCrashWithSignal)
{
    const WorkerRun run = exp::runInProcess(
        []() -> std::string { std::abort(); }, WorkerLimits{});
    EXPECT_EQ(run.outcome, JobOutcome::Crashed);
    EXPECT_EQ(run.failure.signal, SIGABRT);
    EXPECT_TRUE(exp::outcomeIsTransient(run.outcome));
}

TEST(Worker, CapturesTheChildStderrTail)
{
    const WorkerRun run = exp::runInProcess(
        []() -> std::string {
            std::fprintf(stderr, "diagnostic before the crash\n");
            std::fflush(stderr);
            std::abort();
        },
        WorkerLimits{});
    EXPECT_EQ(run.outcome, JobOutcome::Crashed);
    EXPECT_NE(run.failure.stderrTail.find("diagnostic before the"),
              std::string::npos)
        << run.failure.stderrTail;
}

TEST(Worker, BoundsTheStderrTail)
{
    WorkerLimits limits;
    limits.stderrTailBytes = 16;
    const WorkerRun run = exp::runInProcess(
        []() -> std::string {
            for (int i = 0; i < 100; ++i)
                std::fprintf(stderr, "spam line %d\n", i);
            std::fflush(stderr);
            std::abort();
        },
        limits);
    EXPECT_LE(run.failure.stderrTail.size(), 16u);
}

TEST(Worker, ClassifiesAHangAsTimedOut)
{
    WorkerLimits limits;
    limits.timeoutMs = 100;
    const WorkerRun run = exp::runInProcess(
        []() -> std::string {
            for (;;)
                std::this_thread::sleep_for(std::chrono::seconds(1));
        },
        limits);
    EXPECT_EQ(run.outcome, JobOutcome::TimedOut);
    EXPECT_EQ(run.failure.signal, SIGKILL);
    EXPECT_TRUE(exp::outcomeIsTransient(run.outcome));
}

TEST(Worker, ClassifiesExhaustedMemoryAsOom)
{
    if (kSanitized)
        GTEST_SKIP() << "RLIMIT_AS is disabled under sanitizers";
    WorkerLimits limits;
    limits.memLimitBytes = 192ull * 1024 * 1024;
    const WorkerRun run = exp::runInProcess(
        []() -> std::string {
            std::vector<std::unique_ptr<char[]>> hog;
            for (;;) {
                hog.push_back(
                    std::make_unique<char[]>(16ull * 1024 * 1024));
                // Touch the pages so the allocation is real.
                for (std::size_t i = 0; i < 16ull * 1024 * 1024;
                     i += 4096)
                    hog.back()[i] = 1;
            }
        },
        limits);
    EXPECT_EQ(run.outcome, JobOutcome::OutOfMemory);
    EXPECT_TRUE(exp::outcomeIsTransient(run.outcome));
}

TEST(Worker, ClassifiesSimFaultErrorWithItsReport)
{
    const WorkerRun run = exp::runInProcess(
        []() -> std::string {
            SimError err;
            err.kind = SimErrorKind::WatchdogNoProgress;
            err.cycle = 1234;
            err.lastProgressCycle = 200;
            throw SimFaultError(err);
        },
        WorkerLimits{});
    EXPECT_EQ(run.outcome, JobOutcome::SimFault);
    EXPECT_FALSE(exp::outcomeIsTransient(run.outcome));
    EXPECT_NE(run.failure.message.find("watchdog-no-progress"),
              std::string::npos)
        << run.failure.message;
    EXPECT_NE(run.failure.message.find("1234"), std::string::npos);
}

TEST(Worker, EscapedExceptionIsACrashCarryingItsMessage)
{
    const WorkerRun run = exp::runInProcess(
        []() -> std::string {
            throw std::runtime_error("the job escaped");
        },
        WorkerLimits{});
    EXPECT_EQ(run.outcome, JobOutcome::Crashed);
    EXPECT_EQ(run.failure.message, "the job escaped");
}

TEST(Worker, DescribeNamesOutcomeSignalAndAttempts)
{
    JobFailure f;
    f.outcome = JobOutcome::Crashed;
    f.signal = SIGABRT;
    f.attempts = 3;
    const std::string d = f.describe();
    EXPECT_NE(d.find("crashed"), std::string::npos) << d;
    EXPECT_NE(d.find("signal 6"), std::string::npos) << d;
    EXPECT_NE(d.find("3 attempts"), std::string::npos) << d;
}

// ---------------------------------------------------------------- //
// runWithRetry
// ---------------------------------------------------------------- //

TEST(WorkerRetry, TransientFailureUsesEveryAttempt)
{
    const WorkerRun run = exp::runWithRetry(
        []() -> std::string { std::abort(); }, WorkerLimits{},
        fastRetry(3), /*jitterSeed=*/42);
    EXPECT_EQ(run.outcome, JobOutcome::Crashed);
    EXPECT_EQ(run.failure.attempts, 3u);
}

TEST(WorkerRetry, SimFaultIsDeterministicAndNeverRetried)
{
    const WorkerRun run = exp::runWithRetry(
        []() -> std::string {
            SimError err;
            err.kind = SimErrorKind::MaxCyclesExceeded;
            throw SimFaultError(err);
        },
        WorkerLimits{}, fastRetry(5), /*jitterSeed=*/42);
    EXPECT_EQ(run.outcome, JobOutcome::SimFault);
    EXPECT_EQ(run.failure.attempts, 1u);
}

TEST(WorkerRetry, SuccessReturnsImmediately)
{
    const WorkerRun run = exp::runWithRetry(
        [] { return std::string("ok"); }, WorkerLimits{},
        fastRetry(5), /*jitterSeed=*/42);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.payload, "ok");
    EXPECT_EQ(run.failure.attempts, 1u);
}

// ---------------------------------------------------------------- //
// Sweep journal
// ---------------------------------------------------------------- //

TEST(Journal, EscapeRoundTripsArbitraryBytes)
{
    const std::string raw("a b\tc\nd%e\0f", 11);
    EXPECT_EQ(exp::journalUnescape(exp::journalEscape(raw)), raw);
    EXPECT_EQ(exp::journalEscape(raw).find(' '), std::string::npos);
    EXPECT_EQ(exp::journalUnescape(exp::journalEscape("")), "");
}

TEST(Journal, ReplaysOkAndQuarantineRecords)
{
    const std::string path = scratchDir("journal") + "/sweep.journal";
    {
        SweepJournal j(path, /*sweepId=*/0x1234, /*points=*/3,
                       /*resume=*/false);
        j.recordOk(0, 0xaaa, "payload zero");
        JobFailure f;
        f.outcome = JobOutcome::TimedOut;
        f.signal = SIGKILL;
        f.attempts = 2;
        f.message = "hung";
        f.stderrTail = "tail text\n";
        j.recordQuarantine(2, 0xccc, f);
    }
    SweepJournal j(path, 0x1234, 3, /*resume=*/true);
    ASSERT_EQ(j.replayed().size(), 2u);
    const JournalEntry &ok = j.replayed().at(0);
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ok.fingerprint, 0xaaau);
    EXPECT_EQ(ok.payload, "payload zero");
    const JournalEntry &q = j.replayed().at(2);
    EXPECT_FALSE(q.ok);
    EXPECT_EQ(q.fingerprint, 0xcccu);
    EXPECT_EQ(q.failure.outcome, JobOutcome::TimedOut);
    EXPECT_EQ(q.failure.signal, SIGKILL);
    EXPECT_EQ(q.failure.attempts, 2u);
    EXPECT_EQ(q.failure.message, "hung");
    EXPECT_EQ(q.failure.stderrTail, "tail text\n");
}

TEST(Journal, DropsATornFinalLine)
{
    const std::string path = scratchDir("torn") + "/sweep.journal";
    {
        SweepJournal j(path, 0x99, 2, false);
        j.recordOk(0, 0x1, "first");
        j.recordOk(1, 0x2, "second");
    }
    // Simulate a SIGKILL mid-append: truncate inside the last line.
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 7);

    SweepJournal j(path, 0x99, 2, true);
    ASSERT_EQ(j.replayed().size(), 1u);
    EXPECT_EQ(j.replayed().at(0).payload, "first");
}

TEST(Journal, MismatchedSweepIdentityStartsFresh)
{
    const std::string path = scratchDir("mismatch") + "/sweep.journal";
    {
        SweepJournal j(path, /*sweepId=*/0x1, 2, false);
        j.recordOk(0, 0xa, "stale");
    }
    SweepJournal j(path, /*sweepId=*/0x2, 2, /*resume=*/true);
    EXPECT_TRUE(j.replayed().empty());
}

// ---------------------------------------------------------------- //
// Isolated runner
// ---------------------------------------------------------------- //

ExperimentPlan
smallPlan()
{
    ExperimentPlan plan;
    plan.addGrid({AppId::Update}, {Config::B, Config::WB}, tiny());
    return plan;
}

RunnerOptions
isolatedOptions()
{
    RunnerOptions opt;
    opt.jobs = 2;
    opt.printSummary = false;
    opt.isolation = exp::IsolationMode::Process;
    opt.retry = fastRetry(2);
    return opt;
}

TEST(RunnerIsolation, IsBitIdenticalToTheInlinePath)
{
    const ExperimentPlan plan = smallPlan();
    RunnerOptions inlineOpt;
    inlineOpt.jobs = 1;
    inlineOpt.printSummary = false;
    const ExperimentResults inlineRes = runPlan(plan, inlineOpt);
    const ExperimentResults isoRes = runPlan(plan, isolatedOptions());

    ASSERT_EQ(inlineRes.size(), isoRes.size());
    EXPECT_TRUE(isoRes.allOk());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(exp::serializeCell(inlineRes.cells()[i]),
                  exp::serializeCell(isoRes.cells()[i]))
            << plan.points()[i].label;
    }
}

TEST(RunnerIsolation, QuarantinesThePoisonCellAndFinishesTheRest)
{
    const ExperimentPlan plan = smallPlan();
    RunnerOptions opt = isolatedOptions();
    opt.chaosCrashLabel = plan.points()[0].label;
    const ExperimentResults res = runPlan(plan, opt);

    ASSERT_EQ(res.failures().size(), 1u);
    const exp::ExperimentCell &bad = *res.failures()[0];
    EXPECT_EQ(bad.point.label, plan.points()[0].label);
    EXPECT_EQ(bad.failure.outcome, JobOutcome::Crashed);
    EXPECT_EQ(bad.failure.signal, SIGABRT);
    EXPECT_EQ(bad.failure.attempts, 2u);  // Retried, then quarantined.

    // Every other cell completed with real measurements.
    for (std::size_t i = 1; i < plan.size(); ++i) {
        EXPECT_FALSE(res.cells()[i].failed);
        EXPECT_GT(res.cells()[i].result.cycles, 0u);
    }
}

TEST(RunnerIsolation, ResumeReplaysTheJournalInsteadOfSimulating)
{
    const ExperimentPlan plan = smallPlan();
    const std::string dir = scratchDir("resume");
    RunnerOptions opt = isolatedOptions();
    opt.journalPath = dir + "/sweep.journal";
    const ExperimentResults first = runPlan(plan, opt);
    ASSERT_TRUE(first.allOk());

    opt.resume = true;
    const ExperimentResults second = runPlan(plan, opt);
    EXPECT_EQ(second.journalReplays(), plan.size());
    EXPECT_EQ(second.simulated(), 0u);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(exp::serializeCell(first.cells()[i]),
                  exp::serializeCell(second.cells()[i]));
    }
}

TEST(RunnerIsolation, ResumeKeepsAJournaledQuarantine)
{
    const ExperimentPlan plan = smallPlan();
    const std::string dir = scratchDir("resume_poison");
    RunnerOptions opt = isolatedOptions();
    opt.journalPath = dir + "/sweep.journal";
    opt.chaosCrashLabel = plan.points()[1].label;
    const ExperimentResults first = runPlan(plan, opt);
    ASSERT_EQ(first.failures().size(), 1u);

    // Resume without the chaos hook: the poison cell's quarantine is
    // a durable verdict, not retried on every resume.
    opt.chaosCrashLabel.clear();
    opt.resume = true;
    const ExperimentResults second = runPlan(plan, opt);
    ASSERT_EQ(second.failures().size(), 1u);
    EXPECT_EQ(second.failures()[0]->point.label,
              plan.points()[1].label);
    EXPECT_EQ(second.simulated(), 0u);
}

// ---------------------------------------------------------------- //
// Structured-abort propagation (Session / WorkloadHarness)
// ---------------------------------------------------------------- //

TEST(SimFaultPropagation, RunReturnsMaxCyclesExceeded)
{
    CoreParams overrides;
    overrides.maxCycles = 20;
    MiniSim sim(EnforceMode::None, overrides);
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 64; ++i)
        b.str(8, 2, MiniSim::dramLine(i % 8), i);
    const SimResult r = sim.session.run(RunRequest::of(t));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error.kind, SimErrorKind::MaxCyclesExceeded);
    // Rethrowing the structured error keeps the historical what()
    // formatting the isolated workers ship to their parents.
    const SimFaultError e{r.error};
    EXPECT_NE(std::string(e.what()).find("max-cycles-exceeded"),
              std::string::npos)
        << e.what();
}

TEST(SimFaultPropagation, RunReturnsEdkDependenceCycle)
{
    // The forged forward srcID link from the detector tests: the only
    // way this pipeline forms a genuine dependence cycle.
    CoreParams overrides;
    overrides.edkRecoveryMode = EdkRecoveryMode::Report;
    overrides.edkStallCycles = 2'000;
    overrides.watchdogCycles = 100'000;
    MiniSim sim(EnforceMode::IQ, overrides);
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 3; ++i)
        b.str(8, 2, MiniSim::dramLine(i), i);
    b.movImm(10, 3);
    b.mul(11, 10, 10);
    b.mul(12, 11, 11);
    const std::size_t x = b.str(12, 2, sim.nvmLine(0), 1, 0, {4, 0});
    b.str(13, 2, MiniSim::dramLine(3), 2, 0, {0, 4});
    for (int i = 0; i < 3; ++i)
        b.str(14, 2, MiniSim::dramLine(4 + i), i);
    sim.core->corruptEdeLink(x, 1);

    const SimResult r = sim.session.run(RunRequest::of(t));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error.kind, SimErrorKind::EdkDependenceCycle);
    EXPECT_FALSE(r.error.edkChain.empty());
    const SimFaultError e{r.error};
    EXPECT_NE(std::string(e.what()).find("edk-dependence-cycle"),
              std::string::npos)
        << e.what();
}

TEST(SimFaultPropagation, RunSucceedsThenRejectsReuse)
{
    MiniSim sim(EnforceMode::None);
    Trace t;
    TraceBuilder b(t);
    b.str(8, 2, MiniSim::dramLine(0), 1);
    const SimResult r = sim.session.run(RunRequest::of(t));
    EXPECT_TRUE(r.ok());
    EXPECT_GT(r.cycles(), 0u);

    // The session is single-shot: a second run comes back as a
    // structured SessionReused error, not a process abort.
    const SimResult again = sim.session.run(RunRequest::of(t));
    ASSERT_FALSE(again.ok());
    EXPECT_EQ(again.error.kind, SimErrorKind::SessionReused);
    EXPECT_NE(again.error.detail.find("single-shot"),
              std::string::npos);
}

TEST(SimFaultPropagation, HarnessSimulateCheckedThrowsTyped)
{
    // Throttle the backstop so the workload cannot finish in budget:
    // simulateChecked must raise the typed fault, not panic.
    exp::ExperimentPlan plan;
    plan.addGrid({AppId::Update}, {Config::B}, tiny());
    exp::ExperimentPoint point = plan.points()[0];
    point.simParams.core.maxCycles = 20;
    WorkloadHarness h(point.app, point.config, point.spec,
                      point.appParams, point.simParams);
    h.generate();
    try {
        h.simulateChecked();
        FAIL() << "expected SimFaultError";
    } catch (const SimFaultError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::MaxCyclesExceeded);
    }
}

} // namespace
} // namespace ede
