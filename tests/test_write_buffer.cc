/**
 * @file
 * Unit tests for the write buffer: srcID CAM behaviour (Section
 * V-D), memory-dependence gating, DMB gating, JOIN entries and
 * backpressure -- driven directly against a real memory hierarchy.
 */

#include <gtest/gtest.h>

#include "pipeline/write_buffer.hh"

namespace ede {
namespace {

struct WbFixture : ::testing::Test
{
    WbFixture() : mem(MemSystemParams{})
    {
        wb = std::make_unique<WriteBuffer>(
            4, 2, 64, mem,
            [this](const WbEntry &e, Cycle) {
                completed.push_back(e.seq);
            },
            [this](SeqNum barrier) {
                return dmbBlocked && barrier != kNoSeq;
            });
    }

    WbEntry
    store(SeqNum seq, Addr addr, SeqNum src = kNoSeq)
    {
        WbEntry e;
        e.seq = seq;
        e.si.op = Op::Str;
        e.si.size = 8;
        e.addr = addr;
        e.size = 8;
        e.val0 = seq;
        e.srcId = src;
        return e;
    }

    WbEntry
    cvap(SeqNum seq, Addr addr, SeqNum src = kNoSeq)
    {
        WbEntry e;
        e.seq = seq;
        e.si.op = Op::DcCvap;
        e.addr = addr;
        e.srcId = src;
        return e;
    }

    WbEntry
    join(SeqNum seq, SeqNum src1, SeqNum src2)
    {
        WbEntry e;
        e.seq = seq;
        e.si.op = Op::Join;
        e.srcId = src1;
        e.srcId2 = src2;
        return e;
    }

    void
    run(int cycles)
    {
        for (int i = 0; i < cycles; ++i) {
            mem.tick(now);
            wb->tick(now);
            ++now;
        }
    }

    bool
    isDone(SeqNum seq) const
    {
        for (SeqNum s : completed)
            if (s == seq)
                return true;
        return false;
    }

    MemSystem mem;
    std::unique_ptr<WriteBuffer> wb;
    std::vector<SeqNum> completed;
    bool dmbBlocked = false;
    Cycle now = 0;
};

TEST_F(WbFixture, StoreDrainsAndCompletes)
{
    wb->insert(store(1, 0x1000));
    run(2000);
    EXPECT_TRUE(isDone(1));
    EXPECT_TRUE(wb->empty());
    EXPECT_EQ(wb->stats().pushes, 1u);
}

TEST_F(WbFixture, FullAndOccupancy)
{
    dmbBlocked = true; // Hold everything.
    for (SeqNum s = 1; s <= 4; ++s) {
        WbEntry e = store(s, 0x1000 + 64 * s);
        e.dmbBarrier = 100;
        wb->insert(e);
    }
    EXPECT_TRUE(wb->full());
    EXPECT_EQ(wb->occupancy(), 4u);
    run(50);
    EXPECT_TRUE(completed.empty());
    EXPECT_GT(wb->stats().dmbGated, 0u);
    dmbBlocked = false;
    run(2000);
    EXPECT_EQ(completed.size(), 4u);
}

TEST_F(WbFixture, SrcIdGatesUntilProducerCompletes)
{
    // Consumer's producer is present: it must wait.
    wb->insert(cvap(1, MemSystemParams{}.map.nvmBase() + 0x100));
    wb->insert(store(2, 0x2000, /*src=*/1));
    run(5);
    EXPECT_GT(wb->stats().srcIdGated, 0u);
    run(3000);
    ASSERT_EQ(completed.size(), 2u);
    // The producer completed first.
    EXPECT_EQ(completed[0], 1u);
    EXPECT_EQ(completed[1], 2u);
}

TEST_F(WbFixture, InsertionCamClearsDeadSrcId)
{
    // Producer seq 1 is NOT in the buffer (already completed before
    // this retirement): the CAM check must clear the tag or the
    // entry deadlocks (Section V-D).
    wb->insert(store(2, 0x2000, /*src=*/1));
    run(2000);
    EXPECT_TRUE(isDone(2));
}

TEST_F(WbFixture, OnProducerCompleteClearsTags)
{
    wb->insert(cvap(1, MemSystemParams{}.map.nvmBase() + 0x100));
    WbEntry e = store(2, 0x2000);
    e.srcId = 999; // A producer that completes outside the buffer.
    wb->insert(e);
    run(3);
    wb->onProducerComplete(999);
    run(2000);
    EXPECT_TRUE(isDone(2));
}

TEST_F(WbFixture, JoinCompletesWhenBothTagsClear)
{
    wb->insert(cvap(1, MemSystemParams{}.map.nvmBase() + 0x100));
    wb->insert(cvap(2, MemSystemParams{}.map.nvmBase() + 0x200));
    wb->insert(join(3, 1, 2));
    run(3000);
    ASSERT_EQ(completed.size(), 3u);
    EXPECT_EQ(completed.back(), 3u); // JOIN last.
    EXPECT_EQ(wb->stats().pushes, 2u); // JOIN pushes nothing.
}

TEST_F(WbFixture, JoinWithNoTagsCompletesImmediately)
{
    wb->insert(join(5, kNoSeq, kNoSeq));
    run(5);
    EXPECT_TRUE(isDone(5));
}

TEST_F(WbFixture, CleanWaitsForOlderSameLineStore)
{
    const Addr nvm = MemSystemParams{}.map.nvmBase() + 0x300;
    wb->insert(store(1, nvm));
    wb->insert(cvap(2, nvm));
    run(3000);
    ASSERT_EQ(completed.size(), 2u);
    EXPECT_EQ(completed[0], 1u);
    EXPECT_EQ(completed[1], 2u);
    EXPECT_GT(wb->stats().lineGated, 0u);
}

TEST_F(WbFixture, StoreAfterCleanIsNotGated)
{
    // Warm the line first so the later store is an L1 hit.
    const Addr nvm = MemSystemParams{}.map.nvmBase() + 0x400;
    wb->insert(store(1, nvm));
    run(3000);
    ASSERT_TRUE(isDone(1));
    completed.clear();
    wb->insert(cvap(2, nvm));
    wb->insert(store(3, nvm + 8));
    run(3000);
    ASSERT_EQ(completed.size(), 2u);
    // The (fast) store finishes before the clean's persist ack: a
    // store after a clean carries no ordering requirement.
    EXPECT_EQ(completed[0], 3u);
    EXPECT_EQ(completed[1], 2u);
}

TEST_F(WbFixture, OverlappingStoresStayOrdered)
{
    wb->insert(store(1, 0x5000));
    wb->insert(store(2, 0x5000));
    run(3000);
    ASSERT_EQ(completed.size(), 2u);
    EXPECT_EQ(completed[0], 1u);
    EXPECT_EQ(completed[1], 2u);
}

TEST_F(WbFixture, DisjointStoresSameLineMayReorder)
{
    // Different bytes of one line carry no value dependence.
    wb->insert(store(1, 0x6000));
    wb->insert(store(2, 0x6008));
    run(3000);
    EXPECT_EQ(completed.size(), 2u);
}

TEST_F(WbFixture, YoungestOverlapFindsForwardingSource)
{
    wb->insert(store(1, 0x7000));
    wb->insert(store(2, 0x7000));
    auto [seq, covers] = wb->youngestOverlap(0x7000, 8);
    EXPECT_EQ(seq, 2u);
    EXPECT_TRUE(covers);

    auto [none, c2] = wb->youngestOverlap(0x8000, 8);
    EXPECT_EQ(none, kNoSeq);
    EXPECT_FALSE(c2);
}

TEST_F(WbFixture, PartialOverlapReportsNotCovering)
{
    WbEntry e = store(1, 0x9000);
    wb->insert(e);
    // 16-byte query against an 8-byte store: overlap, not covered.
    auto [seq, covers] = wb->youngestOverlap(0x9000, 16);
    EXPECT_EQ(seq, 1u);
    EXPECT_FALSE(covers);
}

TEST_F(WbFixture, ChainedSrcIdsDrainInDependenceOrder)
{
    const Addr nvm = MemSystemParams{}.map.nvmBase();
    wb->insert(cvap(1, nvm + 0x100));
    wb->insert(cvap(2, nvm + 0x200, /*src=*/1));
    wb->insert(cvap(3, nvm + 0x300, /*src=*/2));
    run(5000);
    ASSERT_EQ(completed.size(), 3u);
    EXPECT_EQ(completed[0], 1u);
    EXPECT_EQ(completed[1], 2u);
    EXPECT_EQ(completed[2], 3u);
}

TEST(WbDeath, OverflowPanics)
{
    MemSystem mem{MemSystemParams{}};
    WriteBuffer wb(1, 1, 64, mem, [](const WbEntry &, Cycle) {},
                   [](SeqNum) { return false; });
    WbEntry e;
    e.seq = 1;
    e.si.op = Op::Str;
    e.addr = 0x100;
    e.size = 8;
    wb.insert(e);
    WbEntry e2 = e;
    e2.seq = 2;
    EXPECT_DEATH(wb.insert(e2), "overflow");
}

} // namespace
} // namespace ede
